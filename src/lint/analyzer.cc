#include "analyzer.hh"

#include <algorithm>
#include <map>
#include <set>

#include "lint/lexer.hh"

namespace memo::lint
{

namespace
{

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

// ---------------------------------------------------------------------
// Declaration tracking (heuristic, by name).

struct DeclInfo
{
    std::set<std::string> unordered; //!< unordered_map/set variables
    std::set<std::string> floats;    //!< double/float variables
};

bool
isTypeQualifier(const Token &t)
{
    return t.text == "*" || t.text == "&" || t.text == "const" ||
           t.text == ">";
}

/**
 * Scan declarations: track unordered-container and float variable
 * names, and (when @p findings is set) report pointer-valued map/set
 * keys as memo-DET-003.
 */
void
scanDecls(const std::vector<Token> &toks, DeclInfo &out,
          std::vector<Finding> *findings, const std::string &file)
{
    auto text = [&](size_t i) -> std::string_view {
        return i < toks.size() ? std::string_view(toks[i].text)
                               : std::string_view();
    };

    for (size_t i = 0; i < toks.size(); i++) {
        if (toks[i].kind != TokKind::Ident)
            continue;
        const std::string &name = toks[i].text;

        bool is_unordered = name == "unordered_map" ||
                            name == "unordered_set" ||
                            name == "unordered_multimap" ||
                            name == "unordered_multiset";
        bool is_ordered_assoc = name == "map" || name == "set" ||
                                name == "multimap" ||
                                name == "multiset";
        // Bare "map"/"set" are common variable names; require the
        // std:: qualifier for the ordered containers.
        if (is_ordered_assoc && text(i - 1) != "::")
            is_ordered_assoc = false;

        if ((is_unordered || is_ordered_assoc) && text(i + 1) == "<") {
            // Walk the template argument list; collect the key type.
            int depth = 1;
            size_t j = i + 2;
            std::vector<size_t> first_arg;
            bool in_first = true;
            size_t guard = 0;
            for (; j < toks.size() && depth > 0 && guard < 256;
                 j++, guard++) {
                std::string_view t = text(j);
                if (t == "<")
                    depth++;
                else if (t == ">")
                    depth--;
                else if (t == ">>")
                    depth -= 2;
                else if (t == "," && depth == 1)
                    in_first = false;
                if (depth <= 0)
                    break;
                if (in_first && t != ",")
                    first_arg.push_back(j);
            }
            if (depth > 0)
                continue; // unbalanced: not a template, bail out
            if (findings && !first_arg.empty() &&
                text(first_arg.back()) == "*") {
                findings->push_back(
                    {findRule("memo-DET-003"), file, toks[i].line,
                     toks[i].col,
                     "container key type of '" + name +
                         "' is a raw pointer"});
            }
            // The declared variable name, if this is a declaration.
            size_t k = j + 1;
            while (k < toks.size() && isTypeQualifier(toks[k]))
                k++;
            if (is_unordered && k < toks.size() &&
                toks[k].kind == TokKind::Ident &&
                text(k + 1) != "(")
                out.unordered.insert(toks[k].text);
            continue;
        }

        // A later re-declaration with an integer type wins: without
        // this, "double a" in one function taints "int64_t a" in the
        // next (the sets are file-wide, not scope-aware).
        bool is_int_type =
            name == "int" || name == "long" || name == "short" ||
            name == "unsigned" || name == "signed" ||
            name == "bool" || name == "char" ||
            (name.size() > 2 && endsWith(name, "_t"));
        if (is_int_type) {
            std::string_view prev = text(i - 1);
            if (prev != "::" && prev != "." && prev != "->" &&
                prev != "<") {
                size_t k = i + 1;
                while (k < toks.size() && isTypeQualifier(toks[k]))
                    k++;
                if (k < toks.size() &&
                    toks[k].kind == TokKind::Ident)
                    out.floats.erase(toks[k].text);
            }
            continue;
        }

        if (name == "double" || name == "float") {
            std::string_view prev = text(i - 1);
            if (prev == "::" || prev == "." || prev == "->" ||
                prev == "<")
                continue; // cast / template argument, not a decl
            size_t k = i + 1;
            while (k < toks.size() && (toks[k].text == "*" ||
                                       toks[k].text == "&" ||
                                       toks[k].text == "const"))
                k++;
            if (k >= toks.size() || toks[k].kind != TokKind::Ident)
                continue;
            if (text(k + 1) == "(")
                continue; // function or constructor declaration
            out.floats.insert(toks[k].text);
            // Comma chains: double a = 0.0, b, *c;
            size_t guard = 0;
            size_t p = k + 1;
            int depth = 0;
            while (p < toks.size() && guard++ < 64) {
                std::string_view t = text(p);
                if (t == "(" || t == "[" || t == "{")
                    depth++;
                else if (t == ")" || t == "]" || t == "}")
                    depth--;
                if (depth < 0 || t == ";")
                    break;
                if (t == "," && depth == 0) {
                    size_t q = p + 1;
                    while (q < toks.size() && (toks[q].text == "*" ||
                                               toks[q].text == "&"))
                        q++;
                    // `text(q+1) == "::"` means q is the head of a
                    // qualified name — the type of the next parameter
                    // in a signature, not a comma-chained declarator.
                    if (q < toks.size() &&
                        toks[q].kind == TokKind::Ident &&
                        text(q + 1) != "(" && text(q + 1) != "::")
                        out.floats.insert(toks[q].text);
                    p = q;
                }
                p++;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Brace/scope tracking.

enum class BraceKind : uint8_t
{
    Namespace,
    Class,
    Function,
    Block,
    Init,
};

struct ScopeInfo
{
    std::vector<int> match; //!< per-token matching bracket, or -1
    std::vector<bool> inFunction;  //!< token is inside function code
    std::vector<bool> atNamespace; //!< namespace/TU scope (Init is
                                   //!< transparent)
    std::vector<BraceKind> braceKind; //!< valid at each '{' token
};

ScopeInfo
buildScopes(const std::vector<Token> &toks)
{
    ScopeInfo s;
    size_t n = toks.size();
    s.match.assign(n, -1);
    s.inFunction.assign(n, false);
    s.atNamespace.assign(n, true);
    s.braceKind.assign(n, BraceKind::Block);

    // Pass 1: bracket matching.
    std::vector<size_t> stack;
    for (size_t i = 0; i < n; i++) {
        const std::string &t = toks[i].text;
        if (toks[i].kind != TokKind::Punct)
            continue;
        if (t == "(" || t == "{" || t == "[") {
            stack.push_back(i);
        } else if (t == ")" || t == "}" || t == "]") {
            if (!stack.empty()) {
                s.match[stack.back()] = static_cast<int>(i);
                s.match[i] = static_cast<int>(stack.back());
                stack.pop_back();
            }
        }
    }

    // Pass 2: classify each '{' with lookbehind and maintain the
    // scope stack.
    auto classify = [&](size_t i) -> BraceKind {
        if (i == 0)
            return BraceKind::Block;
        const Token &p = toks[i - 1];
        // Boundary scan: back to the last ; { } (or file start).
        size_t b = i - 1;
        bool saw_namespace = false, saw_class = false;
        int last_close_paren = -1;
        while (true) {
            const std::string &t = toks[b].text;
            if (t == ";" || t == "{" || t == "}")
                break;
            if (toks[b].kind == TokKind::Ident) {
                if (t == "namespace")
                    saw_namespace = true;
                if (t == "class" || t == "struct" || t == "union" ||
                    t == "enum")
                    saw_class = true;
            }
            if (t == ")" && last_close_paren < 0)
                last_close_paren = static_cast<int>(b);
            if (b == 0)
                break;
            b--;
        }
        if (saw_namespace)
            return BraceKind::Namespace;
        if (saw_class)
            return BraceKind::Class;
        if (last_close_paren >= 0) {
            int open = s.match[static_cast<size_t>(last_close_paren)];
            if (open > 0) {
                const std::string &k = toks[static_cast<size_t>(open) -
                                            1].text;
                if (k == "if" || k == "for" || k == "while" ||
                    k == "switch" || k == "catch")
                    return BraceKind::Block;
            }
            return BraceKind::Function;
        }
        if (p.text == "else" || p.text == "do" || p.text == "try")
            return BraceKind::Block;
        if (p.kind == TokKind::Ident || p.text == "," ||
            p.text == "(" || p.text == "=" || p.text == "[")
            return BraceKind::Init;
        return BraceKind::Block;
    };

    std::vector<BraceKind> kinds;
    bool in_fn = false;
    bool at_ns = true;
    auto recompute = [&]() {
        in_fn = false;
        at_ns = true;
        for (BraceKind k : kinds) {
            if (k == BraceKind::Function || k == BraceKind::Block)
                in_fn = true;
            if (k != BraceKind::Namespace && k != BraceKind::Init)
                at_ns = false;
        }
    };
    for (size_t i = 0; i < n; i++) {
        const std::string &t = toks[i].text;
        if (toks[i].kind == TokKind::Punct && t == "{") {
            s.inFunction[i] = in_fn;
            s.atNamespace[i] = at_ns;
            s.braceKind[i] = classify(i);
            kinds.push_back(s.braceKind[i]);
            recompute();
            continue;
        }
        if (toks[i].kind == TokKind::Punct && t == "}") {
            if (!kinds.empty()) {
                kinds.pop_back();
                recompute();
            }
            s.inFunction[i] = in_fn;
            s.atNamespace[i] = at_ns;
            continue;
        }
        s.inFunction[i] = in_fn;
        s.atNamespace[i] = at_ns;
    }
    return s;
}

// ---------------------------------------------------------------------
// Suppressions.

struct Suppression
{
    bool blanket = false;
    std::set<std::string> rules;
};

std::map<int, Suppression>
buildSuppressions(const std::vector<Comment> &comments)
{
    std::map<int, Suppression> supp;
    auto parse = [&](const std::string &text, size_t pos, int line) {
        Suppression &s = supp[line];
        size_t p = pos;
        while (p < text.size() && text[p] == ' ')
            p++;
        if (p >= text.size() || text[p] != '(') {
            s.blanket = true;
            return;
        }
        size_t close = text.find(')', p);
        std::string list = text.substr(
            p + 1, close == std::string::npos ? std::string::npos
                                              : close - p - 1);
        std::string cur;
        for (char c : list + ",") {
            if (c == ',' || c == ' ') {
                if (!cur.empty())
                    s.rules.insert(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (s.rules.empty())
            s.blanket = true;
    };
    for (const Comment &c : comments) {
        size_t p = c.text.find("NOLINTNEXTLINE");
        if (p != std::string::npos) {
            parse(c.text, p + 14, c.endLine + 1);
            continue;
        }
        p = c.text.find("NOLINT");
        if (p != std::string::npos)
            parse(c.text, p + 6, c.line);
    }
    return supp;
}

bool
isSuppressed(const Finding &f,
             const std::map<int, Suppression> &supp)
{
    auto it = supp.find(f.line);
    if (it == supp.end())
        return false;
    return it->second.blanket || it->second.rules.count(f.rule->id);
}

// ---------------------------------------------------------------------
// Capability model (symbol-aware pass).
//
// CapParser lifts the token stream into a per-class model of fields,
// methods and their core/annotations.hh capability macros
// (MEMO_GUARDED_BY, MEMO_REQUIRES, MEMO_UNGUARDED, ...). The model
// feeds the lock-awareness rules: memo-CONC-004 (a class with a
// mutex member must annotate every sibling field) and memo-CONC-005
// (a method touching a guarded field must hold or require its
// mutex). Like every other pass this is lexical and heuristic: it
// resolves names, not types, and errs toward silence on constructs
// it cannot model (operators, constructors, destructors — mirroring
// the Clang analysis, which exempts the latter two as well).

struct CapField
{
    std::string name;
    size_t tok = 0;         //!< token index of the field name
    bool isMutex = false;   //!< the field is itself a lockable type
    bool exempt = false;    //!< const / atomic / condvar / once_flag
    bool unguarded = false; //!< carries MEMO_UNGUARDED
    std::string guard;      //!< MEMO_GUARDED_BY argument, or empty
};

struct CapMethod
{
    std::string name;
    size_t tok = 0;          //!< token index of the method name
    bool special = false;    //!< ctor/dtor/operator/defaulted/deleted
    bool noAnalysis = false; //!< MEMO_NO_THREAD_SAFETY_ANALYSIS
    bool hasBody = false;    //!< defined in-class
    size_t bodyBegin = 0;    //!< first token inside the body
    size_t bodyEnd = 0;      //!< the closing '}' token
    std::set<std::string> required; //!< MEMO_REQUIRES arguments
};

struct CapClass
{
    std::string name; //!< unqualified (nested classes stand alone)
    size_t tok = 0;   //!< token index of the name
    std::vector<CapField> fields;
    std::vector<CapMethod> methods;

    const CapField *
    field(std::string_view n) const
    {
        for (const CapField &f : fields)
            if (f.name == n)
                return &f;
        return nullptr;
    }

    const CapMethod *
    method(std::string_view n) const
    {
        for (const CapMethod &m : methods)
            if (m.name == n)
                return &m;
        return nullptr;
    }
};

bool
isLockableType(std::string_view t)
{
    return t == "mutex" || t == "timed_mutex" ||
           t == "recursive_mutex" || t == "recursive_timed_mutex" ||
           t == "shared_mutex" || t == "shared_timed_mutex" ||
           t == "Mutex";
}

bool
isExemptFieldType(std::string_view t)
{
    return t == "condition_variable" ||
           t == "condition_variable_any" || t == "once_flag" ||
           t.find("atomic") != std::string_view::npos;
}

bool
isScopedLockType(std::string_view t)
{
    return t == "MutexLock" || t == "UniqueLock" ||
           t == "lock_guard" || t == "unique_lock" ||
           t == "scoped_lock" || t == "shared_lock";
}

class CapParser
{
  public:
    CapParser(const std::vector<Token> &toks, const ScopeInfo &scope)
        : toks(toks), scope(scope)
    {
    }

    std::vector<CapClass>
    parse()
    {
        std::vector<CapClass> out;
        for (size_t i = 0; i + 1 < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident ||
                (toks[i].text != "class" && toks[i].text != "struct"))
                continue;
            // `enum class`, `friend class` and template type
            // parameters introduce no class definition here.
            if (i > 0 && (text(i - 1) == "enum" ||
                          text(i - 1) == "friend" ||
                          text(i - 1) == "<" || text(i - 1) == ","))
                continue;
            parseClassAt(i, out);
        }
        return out;
    }

  private:
    const std::vector<Token> &toks;
    const ScopeInfo &scope;

    std::string_view
    text(size_t i) const
    {
        return i < toks.size() ? std::string_view(toks[i].text)
                               : std::string_view();
    }

    void
    parseClassAt(size_t kw, std::vector<CapClass> &out)
    {
        // Name = last plain identifier between the keyword and the
        // body brace (skipping attribute/capability macro argument
        // lists) or the base-clause colon.
        std::string name;
        size_t nameTok = 0;
        size_t open = 0;
        bool inBases = false;
        for (size_t j = kw + 1; j < toks.size();) {
            const Token &t = toks[j];
            if (t.kind == TokKind::Punct && t.text == "(") {
                if (scope.match[j] < 0)
                    return;
                j = static_cast<size_t>(scope.match[j]) + 1;
                continue;
            }
            if (t.kind == TokKind::Punct && t.text == ";")
                return; // forward declaration
            if (t.kind == TokKind::Punct && t.text == "{") {
                open = j;
                break;
            }
            if (t.kind == TokKind::Punct && t.text == ":")
                inBases = true;
            if (!inBases && t.kind == TokKind::Ident &&
                !startsWith(t.text, "MEMO_") && t.text != "final" &&
                t.text != "alignas") {
                name = t.text;
                nameTok = j;
            }
            j++;
        }
        if (!open || name.empty() || scope.match[open] < 0)
            return;

        CapClass cls;
        cls.name = std::move(name);
        cls.tok = nameTok;
        size_t close = static_cast<size_t>(scope.match[open]);

        // Walk the body's top-level member statements. Nested group
        // contents — parens, brackets, initializer braces — are
        // jumped wholesale (only their opening token lands in the
        // statement); nested class bodies are handled by their own
        // parseClassAt call from the global scan.
        std::vector<size_t> stmt;
        for (size_t i = open + 1; i < close;) {
            const Token &t = toks[i];
            if (t.kind == TokKind::Preproc) {
                i++;
                continue;
            }
            if (stmt.empty() && t.kind == TokKind::Ident &&
                (t.text == "public" || t.text == "private" ||
                 t.text == "protected") &&
                text(i + 1) == ":") {
                i += 2;
                continue;
            }
            if (t.kind == TokKind::Punct && t.text == ";") {
                finishMember(cls, stmt, 0);
                stmt.clear();
                i++;
                continue;
            }
            if (t.kind == TokKind::Punct &&
                (t.text == "(" || t.text == "[")) {
                stmt.push_back(i);
                if (scope.match[i] < 0)
                    break;
                i = static_cast<size_t>(scope.match[i]) + 1;
                continue;
            }
            if (t.kind == TokKind::Punct && t.text == "{") {
                if (scope.match[i] < 0)
                    break;
                size_t after = static_cast<size_t>(scope.match[i]) + 1;
                if (scope.braceKind[i] == BraceKind::Init) {
                    stmt.push_back(i); // brace initializer: part of
                    i = after;         // the field statement
                    continue;
                }
                bool nestedType = false;
                for (size_t k : stmt)
                    if (toks[k].kind == TokKind::Ident &&
                        (toks[k].text == "class" ||
                         toks[k].text == "struct" ||
                         toks[k].text == "union" ||
                         toks[k].text == "enum")) {
                        nestedType = true;
                        break;
                    }
                if (!nestedType)
                    finishMember(cls, stmt, i); // in-class body
                stmt.clear();
                i = after;
                continue;
            }
            stmt.push_back(i);
            i++;
        }
        out.push_back(std::move(cls));
    }

    void
    finishMember(CapClass &cls, const std::vector<size_t> &stmt,
                 size_t bodyOpen)
    {
        if (stmt.empty())
            return;

        // Separate the capability annotations from the declaration.
        std::string guard;
        std::set<std::string> required;
        bool unguarded = false, noAnalysis = false;
        std::vector<size_t> decl;
        for (size_t p = 0; p < stmt.size(); p++) {
            size_t k = stmt[p];
            const Token &t = toks[k];
            if (t.kind != TokKind::Ident ||
                !startsWith(t.text, "MEMO_")) {
                decl.push_back(k);
                continue;
            }
            if (t.text == "MEMO_UNGUARDED") {
                unguarded = true;
                continue;
            }
            if (t.text == "MEMO_NO_THREAD_SAFETY_ANALYSIS") {
                noAnalysis = true;
                continue;
            }
            if (text(k + 1) == "(" && scope.match[k + 1] > 0) {
                size_t argsEnd =
                    static_cast<size_t>(scope.match[k + 1]);
                if (t.text == "MEMO_GUARDED_BY" ||
                    t.text == "MEMO_PT_GUARDED_BY") {
                    for (size_t q = k + 2; q < argsEnd; q++)
                        if (toks[q].kind == TokKind::Ident) {
                            guard = toks[q].text;
                            break;
                        }
                } else if (t.text == "MEMO_REQUIRES") {
                    for (size_t q = k + 2; q < argsEnd; q++)
                        if (toks[q].kind == TokKind::Ident)
                            required.insert(toks[q].text);
                }
                // MEMO_ACQUIRE/RELEASE/EXCLUDES/... only matter to
                // the Clang analysis; skip their argument group.
                if (p + 1 < stmt.size() && stmt[p + 1] == k + 1)
                    p++;
            }
        }
        if (decl.empty())
            return;
        std::string_view head = toks[decl[0]].text;
        if (head == "using" || head == "typedef" ||
            head == "friend" || head == "static_assert" ||
            head == "enum" || head == "template")
            return;

        // Method or field? A method has an identifier immediately
        // followed by '(' outside template angle brackets.
        int angle = 0;
        size_t methodTok = 0;
        bool sawTilde = false, defaultedOrDeleted = false;
        bool isOperator = false;
        for (size_t k : decl) {
            const Token &t = toks[k];
            if (t.kind == TokKind::Punct) {
                if (t.text == "<")
                    angle++;
                else if (t.text == ">")
                    angle = angle > 0 ? angle - 1 : 0;
                else if (t.text == ">>")
                    angle = angle >= 2 ? angle - 2 : 0;
                else if (t.text == "~")
                    sawTilde = true;
                continue;
            }
            if (t.kind != TokKind::Ident)
                continue;
            if (t.text == "operator")
                isOperator = true;
            if (!methodTok && angle == 0 && text(k + 1) == "(" &&
                t.text != "alignas" && t.text != "decltype" &&
                t.text != "noexcept" && t.text != "sizeof")
                methodTok = k;
            if (methodTok &&
                (t.text == "default" || t.text == "delete"))
                defaultedOrDeleted = true;
        }

        if (methodTok || isOperator) {
            CapMethod m;
            m.name = methodTok ? toks[methodTok].text : "operator";
            m.tok = methodTok ? methodTok : decl[0];
            m.required = std::move(required);
            m.noAnalysis = noAnalysis;
            m.special = sawTilde || defaultedOrDeleted || isOperator ||
                        m.name == cls.name;
            if (bodyOpen && scope.match[bodyOpen] > 0) {
                m.hasBody = true;
                m.bodyBegin = bodyOpen + 1;
                m.bodyEnd = static_cast<size_t>(scope.match[bodyOpen]);
            }
            cls.methods.push_back(std::move(m));
            return;
        }

        // Field: name = last identifier at angle depth 0 before the
        // first '=', initializer brace, or array bracket.
        CapField f;
        f.unguarded = unguarded;
        f.guard = std::move(guard);
        bool isConst = false;
        angle = 0;
        for (size_t k : decl) {
            const Token &t = toks[k];
            if (t.kind == TokKind::Punct) {
                if (t.text == "<")
                    angle++;
                else if (t.text == ">")
                    angle = angle > 0 ? angle - 1 : 0;
                else if (t.text == ">>")
                    angle = angle >= 2 ? angle - 2 : 0;
                else if (t.text == "=" || t.text == "{" ||
                         t.text == "[")
                    break;
                continue;
            }
            if (t.kind != TokKind::Ident)
                continue;
            if (angle == 0) {
                if (t.text == "const" || t.text == "constexpr" ||
                    t.text == "constinit") {
                    isConst = true;
                    continue;
                }
                if (t.text == "static" || t.text == "mutable" ||
                    t.text == "inline" || t.text == "volatile")
                    continue;
                f.name = t.text;
                f.tok = k;
            }
            if (isLockableType(t.text))
                f.isMutex = true; // any depth: unique_lock<std::mutex>
            if (isExemptFieldType(t.text))
                f.exempt = true;
        }
        if (f.name.empty())
            return;
        // Guards guard, they are not guarded; const fields carry no
        // mutable state the analysis could protect.
        if (isConst || f.isMutex)
            f.exempt = true;
        cls.fields.push_back(std::move(f));
    }
};

const CapClass *
findCapClass(const std::vector<CapClass> &classes,
             std::string_view name)
{
    for (const CapClass &c : classes)
        if (c.name == name)
            return &c;
    return nullptr;
}

// ---------------------------------------------------------------------
// Rule passes.

bool
isFloatLiteral(const Token &t)
{
    if (t.kind != TokKind::Number)
        return false;
    if (startsWith(t.text, "0x") || startsWith(t.text, "0X"))
        return false;
    if (t.text.find('.') != std::string::npos)
        return true;
    char last = t.text.back();
    return last == 'f' || last == 'F';
}

struct Pass
{
    const std::vector<Token> &toks;
    const ScopeInfo &scope;
    const DeclInfo &decls;
    const AnalyzerOptions &opt;
    std::vector<Finding> &fs;

    std::string_view
    text(size_t i) const
    {
        return i < toks.size() ? std::string_view(toks[i].text)
                               : std::string_view();
    }

    void
    report(const char *rule, size_t i, std::string message)
    {
        fs.push_back({findRule(rule), opt.relPath, toks[i].line,
                      toks[i].col, std::move(message)});
    }

    /** DET-001 plus the body spans reused by FP-002. */
    std::vector<std::pair<size_t, size_t>>
    unorderedIterationAndSpans()
    {
        std::vector<std::pair<size_t, size_t>> spans;
        for (size_t i = 0; i + 1 < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident || text(i) != "for" ||
                text(i + 1) != "(")
                continue;
            int close = scope.match[i + 1];
            if (close < 0)
                continue;
            size_t m = static_cast<size_t>(close);
            // Find the range-for ':' at top nesting level.
            int depth = 0;
            size_t colon = 0;
            for (size_t j = i + 2; j < m; j++) {
                std::string_view t = text(j);
                if (t == "(" || t == "[" || t == "{")
                    depth++;
                else if (t == ")" || t == "]" || t == "}")
                    depth--;
                else if (t == ":" && depth == 0) {
                    colon = j;
                    break;
                } else if (t == ";" && depth == 0) {
                    break; // classic for loop
                }
            }
            if (!colon)
                continue;
            bool unordered = false;
            std::string range_name;
            for (size_t j = colon + 1; j < m; j++) {
                if (toks[j].kind != TokKind::Ident)
                    continue;
                if (decls.unordered.count(toks[j].text) ||
                    startsWith(toks[j].text, "unordered_")) {
                    unordered = true;
                    range_name = toks[j].text;
                    break;
                }
            }
            if (!unordered)
                continue;
            report("memo-DET-001", i,
                   "range-for over unordered container '" +
                       range_name + "'");
            size_t body = m + 1;
            if (body < toks.size() && text(body) == "{" &&
                scope.match[body] > 0)
                spans.emplace_back(
                    body, static_cast<size_t>(scope.match[body]));
            else {
                size_t e = body;
                while (e < toks.size() && text(e) != ";")
                    e++;
                spans.emplace_back(body, e);
            }
        }
        return spans;
    }

    void
    wallClockAndRandomness()
    {
        if (opt.relPath == "src/check/fuzz.cc" ||
            opt.relPath == "src/check/fuzz.hh" ||
            opt.relPath == "tools/memo_fuzz.cc")
            return; // the seeded fuzzer owns its randomness
        if (opt.relPath.rfind("src/prof/", 0) == 0)
            return; // the host profiler owns the sanctioned wall clock
                    // (prof::nowNs); see src/prof/prof.hh
        static const std::set<std::string> clocks = {
            "system_clock", "steady_clock", "high_resolution_clock",
            "file_clock",   "utc_clock",    "tai_clock",
            "gps_clock"};
        for (size_t i = 0; i < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const std::string &name = toks[i].text;
            if (name == "random_device" || clocks.count(name)) {
                report("memo-DET-002",
                       i, "'" + name + "' is nondeterministic input");
                continue;
            }
            if ((name == "rand" || name == "srand" ||
                 name == "gettimeofday" || name == "getrandom") &&
                text(i + 1) == "(") {
                report("memo-DET-002",
                       i, "call to '" + name + "()'");
                continue;
            }
            if ((name == "time" || name == "clock") &&
                text(i + 1) == "(" && text(i - 1) != "." &&
                text(i - 1) != "->" &&
                (i == 0 || toks[i - 1].kind != TokKind::Ident)) {
                report("memo-DET-002",
                       i, "call to '" + name + "()' reads wall time");
            }
        }
    }

    void
    floatEquality()
    {
        for (size_t i = 0; i < toks.size(); i++) {
            if (toks[i].kind != TokKind::Punct ||
                (text(i) != "==" && text(i) != "!="))
                continue;
            size_t r = i + 1;
            if (r < toks.size() &&
                (text(r) == "-" || text(r) == "+"))
                r++;
            auto floatish = [&](size_t j) {
                if (j >= toks.size())
                    return false;
                if (isFloatLiteral(toks[j]))
                    return true;
                return toks[j].kind == TokKind::Ident &&
                       decls.floats.count(toks[j].text) > 0;
            };
            if (floatish(i - 1) || floatish(r))
                report("memo-FP-001", i,
                       "floating-point '" + toks[i].text +
                           "' comparison");
        }
    }

    void
    floatAccumulation(
        std::vector<std::pair<size_t, size_t>> spans)
    {
        for (size_t i = 0; i + 1 < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident ||
                (text(i) != "parallelFor" && text(i) != "sweep") ||
                text(i + 1) != "(")
                continue;
            int close = scope.match[i + 1];
            if (close > 0)
                spans.emplace_back(i + 1,
                                   static_cast<size_t>(close));
        }
        for (auto [b, e] : spans) {
            for (size_t j = b; j < e && j < toks.size(); j++) {
                if (toks[j].kind != TokKind::Punct ||
                    (text(j) != "+=" && text(j) != "-="))
                    continue;
                if (j > 0 && toks[j - 1].kind == TokKind::Ident &&
                    decls.floats.count(toks[j - 1].text))
                    report("memo-FP-002", j,
                           "'" + toks[j - 1].text + " " +
                               toks[j].text +
                               "' folds in unspecified order");
            }
        }
    }

    void
    rawThreads()
    {
        if (startsWith(opt.relPath, "src/exec/"))
            return; // the executor owns the primitives
        for (size_t i = 0; i < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const std::string &name = toks[i].text;
            bool std_qualified = i >= 2 && text(i - 1) == "::" &&
                                 text(i - 2) == "std";
            if ((name == "thread" || name == "jthread") &&
                std_qualified && text(i + 1) != "::") {
                report("memo-CONC-001", i, "raw std::" + name);
            } else if (name == "async" && std_qualified) {
                report("memo-CONC-001", i, "raw std::async");
            } else if (name == "detach" &&
                       (text(i - 1) == "." || text(i - 1) == "->") &&
                       text(i + 1) == "(") {
                report("memo-CONC-001", i, "detached thread");
            }
        }
    }

    void
    mutableGlobals()
    {
        static const std::set<std::string> skip_heads = {
            "using",     "typedef",  "template", "friend",
            "static_assert", "extern", "class",  "struct",
            "union",     "enum",     "namespace", "public",
            "private",   "protected", "operator", "return",
            "goto"};
        static const std::set<std::string> exempt = {
            "const",     "constexpr",          "constinit",
            "thread_local", "once_flag",       "mutex",
            "condition_variable"};

        auto classify = [&](size_t s0, size_t s1) {
            if (s1 - s0 < 2)
                return;
            if (toks[s0].kind != TokKind::Ident ||
                skip_heads.count(toks[s0].text))
                return;
            int depth = 0;
            size_t eq = 0;
            bool paren_before_eq = false, any_paren = false;
            for (size_t j = s0; j < s1; j++) {
                std::string_view t = text(j);
                if (toks[j].kind == TokKind::Ident &&
                    (exempt.count(toks[j].text) ||
                     toks[j].text.find("atomic") !=
                         std::string::npos))
                    return;
                if (t == "(" || t == "[")
                    depth++;
                else if (t == ")" || t == "]")
                    depth--;
                if (t == "(") {
                    any_paren = true;
                    if (!eq)
                        paren_before_eq = true;
                }
                if (t == "=" && depth == 0 && !eq)
                    eq = j;
            }
            if (eq ? paren_before_eq : any_paren)
                return; // function declaration or macro call
            report("memo-CONC-002", s0,
                   "mutable namespace-scope variable '" +
                       (toks[s0 + 1].kind == TokKind::Ident
                            ? toks[s0 + 1].text
                            : toks[s0].text) +
                       "'");
        };

        size_t start = static_cast<size_t>(-1);
        for (size_t i = 0; i < toks.size(); i++) {
            if (!scope.atNamespace[i]) {
                continue;
            }
            if (toks[i].kind == TokKind::Preproc)
                continue;
            std::string_view t = text(i);
            if (start == static_cast<size_t>(-1)) {
                if (t == ";" || t == "{" || t == "}")
                    continue;
                start = i;
                continue;
            }
            if (t == ";") {
                classify(start, i);
                start = static_cast<size_t>(-1);
            } else if (t == "{" &&
                       scope.braceKind[i] != BraceKind::Init) {
                // Entering a namespace/class/function body: the
                // pending tokens were a definition header.
                start = static_cast<size_t>(-1);
            }
        }
    }

    void
    mutableLocalStatics()
    {
        static const std::set<std::string> exempt = {
            "const",     "constexpr",          "constinit",
            "thread_local", "once_flag",       "mutex",
            "condition_variable"};
        for (size_t i = 0; i < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident ||
                text(i) != "static" || !scope.inFunction[i])
                continue;
            bool ok = false, name_done = false;
            std::string name;
            for (size_t j = i + 1; j < toks.size() && j < i + 120;
                 j++) {
                std::string_view t = text(j);
                if (t == ";")
                    break;
                if (t == "(" || t == "=" || t == "{")
                    name_done = true;
                if (toks[j].kind == TokKind::Ident) {
                    if (exempt.count(toks[j].text) ||
                        toks[j].text.find("atomic") !=
                            std::string::npos) {
                        ok = true;
                        break;
                    }
                    if (!name_done)
                        name = toks[j].text;
                }
            }
            if (!ok)
                report("memo-CONC-003", i,
                       "mutable function-local static" +
                           (name.empty() ? "" : " '" + name + "'"));
        }
    }

    void
    statsBypass()
    {
        if (!startsWith(opt.relPath, "src/obs/") &&
            !startsWith(opt.relPath, "src/exec/"))
            return;
        for (size_t i = 1; i + 1 < toks.size(); i++) {
            if (toks[i].kind == TokKind::Ident &&
                text(i) == "stats" &&
                (text(i - 1) == "." || text(i - 1) == "->") &&
                text(i + 1) == "(")
                report("memo-API-001", i,
                       "MemoStats polled via stats() from the "
                       "observability layer");
        }
    }

    /** memo-CONC-004: mutex-bearing classes must annotate fields. */
    void
    capabilityFields(const std::vector<CapClass> &classes)
    {
        for (const CapClass &cls : classes) {
            const CapField *mx = nullptr;
            for (const CapField &f : cls.fields)
                if (f.isMutex) {
                    mx = &f;
                    break;
                }
            if (!mx)
                continue;
            for (const CapField &f : cls.fields) {
                if (f.exempt || f.unguarded || !f.guard.empty())
                    continue;
                report("memo-CONC-004", f.tok,
                       "field '" + f.name + "' of '" + cls.name +
                           "' shares the class with mutex '" +
                           mx->name +
                           "' but is neither MEMO_GUARDED_BY nor "
                           "MEMO_UNGUARDED");
            }
        }
    }

    /** memo-CONC-005: touching a guarded field needs its mutex. */
    void
    capabilityHolds(const std::vector<CapClass> &classes,
                    const std::vector<CapClass> &headerClasses)
    {
        for (const CapClass &cls : classes)
            for (const CapMethod &m : cls.methods)
                if (m.hasBody)
                    checkMethodBody(cls, m, m.bodyBegin, m.bodyEnd);

        // Out-of-line definitions: `Class::method(...) ... {` at
        // namespace scope; the declaration (and its MEMO_REQUIRES)
        // lives in this file or the companion header.
        for (size_t i = 0; i + 3 < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident ||
                scope.inFunction[i] || text(i + 1) != "::" ||
                toks[i + 2].kind != TokKind::Ident ||
                text(i + 3) != "(")
                continue;
            int pc = scope.match[i + 3];
            if (pc < 0)
                continue;
            // Skip trailing const/noexcept/override and capability
            // macros to the body brace; anything else means this was
            // not a definition (a declaration, an initializer, ...).
            size_t j = static_cast<size_t>(pc) + 1;
            while (j < toks.size() && toks[j].kind == TokKind::Ident &&
                   (text(j) == "const" || text(j) == "noexcept" ||
                    text(j) == "override" || text(j) == "final" ||
                    startsWith(toks[j].text, "MEMO_"))) {
                j++;
                if (j < toks.size() && text(j) == "(" &&
                    scope.match[j] > 0)
                    j = static_cast<size_t>(scope.match[j]) + 1;
            }
            if (j >= toks.size() || text(j) != "{" ||
                scope.match[j] < 0)
                continue;
            const CapClass *cls =
                findCapClass(classes, toks[i].text);
            if (!cls)
                cls = findCapClass(headerClasses, toks[i].text);
            if (!cls)
                continue;
            const std::string &mname = toks[i + 2].text;
            if (mname == cls->name || mname == "operator")
                continue; // constructors and operators are exempt
            CapMethod m;
            m.name = mname;
            m.tok = i + 2;
            if (const CapMethod *decl = cls->method(mname)) {
                m.required = decl->required;
                m.noAnalysis = decl->noAnalysis;
                m.special = decl->special;
            }
            checkMethodBody(*cls, m, j + 1,
                            static_cast<size_t>(scope.match[j]));
        }
    }

    /**
     * One method body against one class model. Lexically coarse on
     * purpose: a scoped-lock construction anywhere in the body whose
     * arguments name the guard counts as holding it (lock scopes and
     * lock ordering are the Clang analysis' job; this rule catches
     * fields that are touched with no lock in sight).
     */
    void
    checkMethodBody(const CapClass &cls, const CapMethod &m,
                    size_t b, size_t e)
    {
        if (m.special || m.noAnalysis)
            return;
        std::set<std::string> held = m.required;
        for (size_t i = b; i < e; i++) {
            if (toks[i].kind != TokKind::Ident ||
                !isScopedLockType(toks[i].text))
                continue;
            // MutexLock lk(m); std::lock_guard<std::mutex> lk(m_);
            int angle = 0;
            for (size_t j = i + 1; j < e && j < i + 16; j++) {
                std::string_view t = text(j);
                if (t == "<") {
                    angle++;
                } else if (t == ">") {
                    angle = angle > 0 ? angle - 1 : 0;
                } else if (t == ">>") {
                    angle = angle >= 2 ? angle - 2 : 0;
                } else if (t == ";") {
                    break;
                } else if (t == "(" && angle == 0) {
                    if (scope.match[j] > 0)
                        for (size_t q = j + 1;
                             q < static_cast<size_t>(scope.match[j]);
                             q++)
                            if (toks[q].kind == TokKind::Ident)
                                held.insert(toks[q].text);
                    break;
                }
            }
        }
        for (size_t i = b; i < e; i++) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const CapField *f = cls.field(toks[i].text);
            if (!f || f->guard.empty() || f->unguarded || f->exempt)
                continue;
            std::string_view prev = text(i - 1);
            if (prev == "." ||
                (prev == "->" && text(i - 2) != "this"))
                continue; // a member of some other object
            if (held.count(f->guard))
                continue;
            report("memo-CONC-005", i,
                   "'" + cls.name + "::" + m.name + "' touches '" +
                       f->name + "' (guarded by '" + f->guard +
                       "') without holding or requiring the mutex");
            return; // one finding per method is enough
        }
    }

    /** memo-IO-001: src/trace must not discard stdio results. */
    void
    uncheckedIo()
    {
        if (!startsWith(opt.relPath, "src/trace/"))
            return;
        static const std::set<std::string> calls = {
            "fread", "fwrite", "ftell", "fseek", "rename"};
        for (size_t i = 0; i + 1 < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident ||
                !calls.count(toks[i].text) || text(i + 1) != "(" ||
                !scope.inFunction[i])
                continue;
            // Walk back over a namespace qualifier to the head of
            // the expression statement.
            size_t h = i;
            if (h >= 2 && text(h - 1) == "::") {
                if (text(h - 2) == "fs" ||
                    text(h - 2) == "filesystem")
                    continue; // fs::rename(a, b, ec) reports through
                              // its error_code parameter
                h -= 2;
                if (h >= 2 && text(h - 1) == "::")
                    h -= 2;
            } else if (h >= 1 &&
                       (text(h - 1) == "." || text(h - 1) == "->")) {
                continue; // member call on some stream object
            }
            std::string_view before = h > 0 ? text(h - 1) : ";";
            if (before != ";" && before != "{" && before != "}")
                continue; // the result feeds an expression
            report("memo-IO-001", i,
                   "result of '" + toks[i].text + "' is discarded");
        }
    }

    void
    cliRegistration()
    {
        if (!startsWith(opt.relPath, "tools/") ||
            !endsWith(opt.relPath, ".cc") || opt.toolsReadme.empty())
            return;
        for (size_t i = 0; i + 1 < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident ||
                text(i) != "main" || text(i + 1) != "(" ||
                !scope.atNamespace[i])
                continue;
            size_t slash = opt.relPath.rfind('/');
            std::string stem = opt.relPath.substr(slash + 1);
            stem = stem.substr(0, stem.size() - 3); // drop ".cc"
            std::replace(stem.begin(), stem.end(), '_', '-');
            if (opt.toolsReadme.find(stem) == std::string::npos)
                report("memo-API-002", i,
                       "tool '" + stem +
                           "' has a main() but no section in "
                           "tools/README.md");
            return;
        }
    }
};

} // anonymous namespace

std::string
lintAsOverride(std::string_view source)
{
    std::string_view head = source.substr(
        0, std::min<size_t>(source.size(), 512));
    size_t p = head.find("LINT-AS:");
    if (p == std::string_view::npos)
        return "";
    size_t b = p + 8;
    while (b < head.size() && head[b] == ' ')
        b++;
    size_t e = b;
    while (e < head.size() && head[e] != '\n' && head[e] != ' ' &&
           head[e] != '\r')
        e++;
    return std::string(head.substr(b, e - b));
}

std::vector<Finding>
analyzeFile(std::string_view source, const AnalyzerOptions &opt)
{
    LexResult lr = lex(source);

    DeclInfo decls;
    std::vector<CapClass> headerClasses;
    if (!opt.companionHeader.empty()) {
        LexResult header = lex(opt.companionHeader);
        scanDecls(header.tokens, decls, nullptr, opt.relPath);
        ScopeInfo headerScope = buildScopes(header.tokens);
        headerClasses =
            CapParser(header.tokens, headerScope).parse();
    }
    std::vector<Finding> fs;
    scanDecls(lr.tokens, decls, &fs, opt.relPath);

    ScopeInfo scope = buildScopes(lr.tokens);
    std::vector<CapClass> classes = CapParser(lr.tokens, scope).parse();
    Pass pass{lr.tokens, scope, decls, opt, fs};
    auto spans = pass.unorderedIterationAndSpans();
    pass.wallClockAndRandomness();
    pass.floatEquality();
    pass.floatAccumulation(std::move(spans));
    pass.rawThreads();
    pass.mutableGlobals();
    pass.mutableLocalStatics();
    pass.capabilityFields(classes);
    pass.capabilityHolds(classes, headerClasses);
    pass.uncheckedIo();
    pass.statsBypass();
    pass.cliRegistration();

    std::map<int, Suppression> supp = buildSuppressions(lr.comments);
    std::vector<Finding> kept;
    for (Finding &f : fs)
        if (!isSuppressed(f, supp))
            kept.push_back(std::move(f));
    std::sort(kept.begin(), kept.end());
    return kept;
}

} // namespace memo::lint
