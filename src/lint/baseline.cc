#include "baseline.hh"

#include <sstream>

#include "lint/emit.hh"

namespace memo::lint
{

namespace
{

/**
 * The smallest JSON reader that handles the baseline format (and
 * reasonable hand edits of it): objects, arrays, strings with
 * escapes, integers. No floats, no unicode escapes — the canonical
 * writer never emits them.
 */
struct MiniJson
{
    const std::string &s;
    size_t i = 0;
    std::string err;

    void
    skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                s[i] == '\r'))
            i++;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            i++;
            return true;
        }
        err = std::string("expected '") + c + "'";
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return i < s.size() && s[i] == c;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size()) {
                i++;
                switch (s[i]) {
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  default:
                    out += s[i];
                }
            } else {
                out += s[i];
            }
            i++;
        }
        return expect('"');
    }

    bool
    parseUint(uint64_t &out)
    {
        skipWs();
        size_t start = i;
        out = 0;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
            out = out * 10 + static_cast<uint64_t>(s[i] - '0');
            i++;
        }
        if (i == start) {
            err = "expected integer";
            return false;
        }
        return true;
    }

    /** Skip any JSON value (for unknown keys). */
    bool
    skipValue()
    {
        skipWs();
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '"') {
            std::string tmp;
            return parseString(tmp);
        }
        if (c == '{' || c == '[') {
            char close = c == '{' ? '}' : ']';
            int depth = 0;
            bool in_str = false;
            for (; i < s.size(); i++) {
                if (in_str) {
                    if (s[i] == '\\')
                        i++;
                    else if (s[i] == '"')
                        in_str = false;
                    continue;
                }
                if (s[i] == '"')
                    in_str = true;
                else if (s[i] == c || (c == '{' && s[i] == '[') ||
                         (c == '[' && s[i] == '{'))
                    depth++;
                else if (s[i] == close || s[i] == (c == '{' ? ']' : '}'))
                    depth--;
                if (depth == 0) {
                    i++;
                    return true;
                }
            }
            return false;
        }
        while (i < s.size() && s[i] != ',' && s[i] != '}' &&
               s[i] != ']')
            i++;
        return true;
    }
};

} // anonymous namespace

bool
Baseline::parse(const std::string &json, std::string &error)
{
    counts_.clear();
    MiniJson p{json};
    if (!p.expect('{')) {
        error = p.err;
        return false;
    }
    while (!p.peek('}')) {
        std::string key;
        if (!p.parseString(key) || !p.expect(':')) {
            error = p.err;
            return false;
        }
        if (key != "findings") {
            if (!p.skipValue()) {
                error = "bad value for key '" + key + "'";
                return false;
            }
        } else {
            if (!p.expect('[')) {
                error = p.err;
                return false;
            }
            while (!p.peek(']')) {
                if (!p.expect('{')) {
                    error = p.err;
                    return false;
                }
                std::string rule, file;
                uint64_t count = 1;
                while (!p.peek('}')) {
                    std::string k;
                    if (!p.parseString(k) || !p.expect(':')) {
                        error = p.err;
                        return false;
                    }
                    bool ok = true;
                    if (k == "rule")
                        ok = p.parseString(rule);
                    else if (k == "file")
                        ok = p.parseString(file);
                    else if (k == "count")
                        ok = p.parseUint(count);
                    else
                        ok = p.skipValue();
                    if (!ok) {
                        error = p.err.empty() ? "bad entry" : p.err;
                        return false;
                    }
                    if (!p.peek('}') && !p.expect(',')) {
                        error = p.err;
                        return false;
                    }
                }
                p.expect('}');
                if (rule.empty() || file.empty()) {
                    error = "baseline entry missing rule or file";
                    return false;
                }
                counts_[{rule, file}] += count;
                if (!p.peek(']') && !p.expect(',')) {
                    error = p.err;
                    return false;
                }
            }
            p.expect(']');
        }
        if (!p.peek('}') && !p.expect(',')) {
            error = p.err;
            return false;
        }
    }
    return true;
}

std::string
Baseline::serialize() const
{
    std::ostringstream os;
    os << "{\n  \"version\": 1,\n  \"findings\": [";
    bool first = true;
    for (const auto &[key, count] : counts_) {
        if (!count)
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"rule\": \"" << jsonEscape(key.first)
           << "\", \"file\": \"" << jsonEscape(key.second)
           << "\", \"count\": " << count << "}";
    }
    os << (first ? "]\n}\n" : "\n  ]\n}\n");
    return os.str();
}

Baseline
Baseline::fromFindings(const std::vector<Finding> &findings)
{
    Baseline b;
    for (const Finding &f : findings)
        b.counts_[{f.rule->id, f.file}]++;
    return b;
}

std::vector<Finding>
Baseline::filter(const std::vector<Finding> &findings) const
{
    std::map<std::pair<std::string, std::string>, uint64_t> used;
    std::vector<Finding> fresh;
    for (const Finding &f : findings) {
        std::pair<std::string, std::string> key{f.rule->id, f.file};
        auto it = counts_.find(key);
        uint64_t allowed = it == counts_.end() ? 0 : it->second;
        if (used[key] < allowed)
            used[key]++;
        else
            fresh.push_back(f);
    }
    return fresh;
}

size_t
Baseline::size() const
{
    size_t n = 0;
    for (const auto &[key, count] : counts_)
        n += count;
    return n;
}

uint64_t
Baseline::count(const std::string &rule,
                const std::string &file) const
{
    auto it = counts_.find({rule, file});
    return it == counts_.end() ? 0 : it->second;
}

std::vector<std::string>
Baseline::staleEntries(const std::vector<Finding> &findings) const
{
    std::map<std::pair<std::string, std::string>, uint64_t> actual;
    for (const Finding &f : findings)
        actual[{f.rule->id, f.file}]++;
    std::vector<std::string> stale;
    for (const auto &[key, tolerated] : counts_) {
        if (!tolerated)
            continue;
        auto it = actual.find(key);
        uint64_t have = it == actual.end() ? 0 : it->second;
        if (have < tolerated) {
            std::ostringstream os;
            os << key.first << " @ " << key.second << " (tolerates "
               << tolerated << ", found " << have << ")";
            stale.push_back(os.str());
        }
    }
    return stale;
}

std::vector<std::string>
Baseline::errorSeverityEntries() const
{
    std::vector<std::string> bad;
    for (const auto &[key, count] : counts_) {
        if (!count)
            continue;
        const RuleInfo *rule = findRule(key.first);
        if (!rule || rule->severity == Severity::Error)
            bad.push_back(key.first + " @ " + key.second);
    }
    return bad;
}

} // namespace memo::lint
