/**
 * @file
 * The memo-lint baseline: the ratchet that lets the linter land on an
 * existing codebase without a big-bang cleanup.
 *
 * A baseline records, per (rule, file), how many findings are
 * tolerated. A lint run fails only on findings in excess of the
 * baseline, so the committed `lint-baseline.json` can only shrink
 * over time (fix a finding, regenerate, commit). Matching is by
 * count, not line number, so unrelated edits never invalidate the
 * baseline. Two policies keep the ratchet honest (both enforced by
 * tests/test_lint.cc and the driver):
 *
 *  - Error-severity findings (the DET, CONC and IO families) must
 *    never be baselined — they are fixed or explicitly
 *    NOLINT-suppressed with a justification.
 *  - The baseline may not go stale: an entry tolerating more
 *    findings than the code still produces is rejected, so a fix
 *    must be accompanied by a shrunk baseline (`--update-baseline`)
 *    and the headroom can never be spent on a new regression.
 */

#ifndef MEMO_LINT_BASELINE_HH
#define MEMO_LINT_BASELINE_HH

#include <map>
#include <string>
#include <vector>

#include "lint/analyzer.hh"

namespace memo::lint
{

/** Tolerated finding counts keyed by (rule id, repo-relative file). */
class Baseline
{
  public:
    /** Parse the JSON text of a baseline file. @return success. */
    bool parse(const std::string &json, std::string &error);

    /** Serialize to the canonical JSON format (sorted keys). */
    std::string serialize() const;

    /** Build a baseline that tolerates exactly @p findings. */
    static Baseline fromFindings(const std::vector<Finding> &findings);

    /**
     * The findings not covered by this baseline: for each
     * (rule, file) group the first `tolerated` findings are absorbed
     * and the rest returned, preserving order.
     */
    std::vector<Finding>
    filter(const std::vector<Finding> &findings) const;

    /** Total tolerated findings. */
    size_t size() const;

    /** Tolerated count for one (rule, file) pair. */
    uint64_t count(const std::string &rule,
                   const std::string &file) const;

    /** Entries for error-severity rules (policy violations). */
    std::vector<std::string> errorSeverityEntries() const;

    /**
     * Entries that tolerate more findings than @p findings actually
     * contains for their (rule, file) pair — stale headroom that must
     * be ratcheted away with `--update-baseline`. Applies to every
     * severity. Each string names the entry with its tolerated and
     * actual counts.
     */
    std::vector<std::string>
    staleEntries(const std::vector<Finding> &findings) const;

  private:
    std::map<std::pair<std::string, std::string>, uint64_t> counts_;
};

} // namespace memo::lint

#endif // MEMO_LINT_BASELINE_HH
