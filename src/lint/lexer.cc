#include "lexer.hh"

#include <atomic>
#include <cctype>

namespace memo::lint
{

namespace
{

/** setLexerFaultInjection() state; read once per block comment. */
std::atomic<bool> lexer_fault_injection{false};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character operators we must not split (longest first). */
const char *two_char_ops[] = {
    "::", "->", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

} // anonymous namespace

LexResult
lex(std::string_view src)
{
    LexResult out;
    size_t i = 0;
    int line = 1, col = 1;

    auto advance = [&](size_t n) {
        for (size_t k = 0; k < n && i < src.size(); k++, i++) {
            if (src[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
    };

    while (i < src.size()) {
        char c = src[i];

        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            int start_line = line;
            size_t j = i + 2;
            while (j < src.size() && src[j] != '\n')
                j++;
            out.comments.push_back(
                {std::string(src.substr(i + 2, j - i - 2)), start_line,
                 start_line});
            advance(j - i);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            int start_line = line;
            size_t j = i + 2;
            while (j + 1 < src.size() &&
                   !(src[j] == '*' && src[j + 1] == '/'))
                j++;
            size_t end = (j + 1 < src.size()) ? j + 2 : src.size();
            std::string body(src.substr(i + 2, j - i - 2));
            if (lexer_fault_injection.load(std::memory_order_relaxed)) {
                // Injected bug: skip the comment without counting its
                // newlines, desynchronizing every later position.
                col += static_cast<int>(end - i);
                i = end;
            } else {
                advance(end - i);
            }
            out.comments.push_back({std::move(body), start_line, line});
            continue;
        }

        // Preprocessor line (with backslash continuations). Kept as
        // one opaque token so includes and macros never feed rules.
        if (c == '#' && (out.tokens.empty() ||
                         out.tokens.back().line != line)) {
            int start_line = line, start_col = col;
            size_t j = i + 1;
            while (j < src.size()) {
                if (src[j] == '\n' &&
                    !(j > 0 && src[j - 1] == '\\'))
                    break;
                j++;
            }
            // Directive name only, e.g. "include" or "define".
            size_t k = i + 1;
            while (k < j && (src[k] == ' ' || src[k] == '\t'))
                k++;
            size_t e = k;
            while (e < j && isIdentChar(src[e]))
                e++;
            out.tokens.push_back({TokKind::Preproc,
                                  std::string(src.substr(k, e - k)),
                                  start_line, start_col});
            advance(j - i);
            continue;
        }

        // Raw string literal R"delim( ... )delim".
        if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
            size_t d0 = i + 2;
            size_t dp = d0;
            while (dp < src.size() && src[dp] != '(' &&
                   src[dp] != '"' && dp - d0 <= 16)
                dp++;
            if (dp < src.size() && src[dp] == '(') {
                std::string close;
                close.reserve(dp - d0 + 2);
                close.push_back(')');
                close.append(src.data() + d0, dp - d0);
                close.push_back('"');
                size_t end = src.find(close, dp + 1);
                size_t stop = end == std::string_view::npos
                                  ? src.size()
                                  : end + close.size();
                int start_line = line, start_col = col;
                out.tokens.push_back({TokKind::String, "<raw-string>",
                                      start_line, start_col});
                advance(stop - i);
                continue;
            }
        }

        // String and char literals.
        if (c == '"' || c == '\'') {
            char quote = c;
            int start_line = line, start_col = col;
            size_t j = i + 1;
            while (j < src.size() && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < src.size())
                    j++;
                j++;
            }
            size_t stop = j < src.size() ? j + 1 : src.size();
            out.tokens.push_back(
                {quote == '"' ? TokKind::String : TokKind::CharLit,
                 std::string(src.substr(i, stop - i)), start_line,
                 start_col});
            advance(stop - i);
            continue;
        }

        // Numbers (integer, float, hex; pp-number-ish: consumes
        // suffixes and exponents with their signs).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < src.size() &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            int start_line = line, start_col = col;
            size_t j = i;
            while (j < src.size()) {
                char d = src[j];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    j++;
                    continue;
                }
                if ((d == '+' || d == '-') && j > i &&
                    (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                     src[j - 1] == 'p' || src[j - 1] == 'P')) {
                    j++;
                    continue;
                }
                break;
            }
            out.tokens.push_back({TokKind::Number,
                                  std::string(src.substr(i, j - i)),
                                  start_line, start_col});
            advance(j - i);
            continue;
        }

        // Identifiers / keywords.
        if (isIdentStart(c)) {
            int start_line = line, start_col = col;
            size_t j = i;
            while (j < src.size() && isIdentChar(src[j]))
                j++;
            out.tokens.push_back({TokKind::Ident,
                                  std::string(src.substr(i, j - i)),
                                  start_line, start_col});
            advance(j - i);
            continue;
        }

        // Punctuation: two-char operators first.
        if (i + 1 < src.size()) {
            std::string_view pair = src.substr(i, 2);
            bool matched = false;
            for (const char *op : two_char_ops) {
                if (pair == op) {
                    out.tokens.push_back(
                        {TokKind::Punct, std::string(op), line, col});
                    advance(2);
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line,
                              col});
        advance(1);
    }
    return out;
}

void
setLexerFaultInjection(bool enabled)
{
    lexer_fault_injection.store(enabled, std::memory_order_relaxed);
}

} // namespace memo::lint
