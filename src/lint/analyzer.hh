/**
 * @file
 * Per-file rule analysis for memo-lint.
 *
 * analyzeFile() lexes one translation unit, runs a brace/scope
 * tracker over the token stream, applies every rule in the catalog
 * and filters the findings through `// NOLINT(...)` /
 * `// NOLINTNEXTLINE(...)` suppressions. Rules that depend on where
 * a file lives (e.g. raw threads are only allowed under src/exec/)
 * use the repo-relative path in AnalyzerOptions; a leading
 * `// LINT-AS: <path>` comment overrides it, which is how the test
 * fixtures exercise path-scoped rules from tests/lint_fixtures/.
 *
 * The analysis is heuristic and lexical by design (no libclang, no
 * preprocessing): variable "types" are tracked by name from
 * declarations seen in the file and in its companion header. The
 * false-positive policy is default-deny: a flagged construct that is
 * actually sound gets a NOLINT with a one-line justification.
 */

#ifndef MEMO_LINT_ANALYZER_HH
#define MEMO_LINT_ANALYZER_HH

#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hh"

namespace memo::lint
{

/** One reported rule violation. */
struct Finding
{
    const RuleInfo *rule;
    std::string file; //!< repo-relative path
    int line;
    int col;
    std::string message;

    bool
    operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (col != o.col)
            return col < o.col;
        return std::string_view(rule->id) < o.rule->id;
    }
};

struct AnalyzerOptions
{
    /** Repo-relative path used for reporting and path-scoped rules. */
    std::string relPath;
    /** Contents of the companion header (same stem, .hh), or empty. */
    std::string companionHeader;
    /** Contents of tools/README.md for the CLI-registration rule. */
    std::string toolsReadme;
};

/** Analyze one file; returns findings with suppressions applied. */
std::vector<Finding> analyzeFile(std::string_view source,
                                 const AnalyzerOptions &opt);

/**
 * The `// LINT-AS: <path>` override found in the leading comments of
 * @p source, or empty. Exposed for the driver, which must apply it
 * before deciding companion headers.
 */
std::string lintAsOverride(std::string_view source);

} // namespace memo::lint

#endif // MEMO_LINT_ANALYZER_HH
