/**
 * @file
 * A minimal C++ lexer for the memo-lint static-analysis pass.
 *
 * This is not a conforming C++ tokenizer — it is the smallest lexer
 * that lets the rule passes in analyzer.cc reason about real code:
 * identifiers, numbers, string/char literals (including raw strings),
 * multi-character operators, comments (retained separately, so NOLINT
 * suppressions can be matched to lines), and preprocessor lines
 * (retained as opaque single tokens so directives never confuse the
 * rule passes). Everything is positioned by 1-based line and column.
 */

#ifndef MEMO_LINT_LEXER_HH
#define MEMO_LINT_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

namespace memo::lint
{

enum class TokKind
{
    Ident,   //!< identifier or keyword
    Number,  //!< numeric literal (integer or floating)
    String,  //!< string literal, including raw strings
    CharLit, //!< character literal
    Punct,   //!< operator / punctuation (multi-char ops are one token)
    Preproc, //!< one whole preprocessor line (text = directive name)
};

/** One token of a translation unit. */
struct Token
{
    TokKind kind;
    std::string text;
    int line; //!< 1-based line of the first character
    int col;  //!< 1-based column of the first character
};

/** One comment, retained for NOLINT / EXPECT annotation matching. */
struct Comment
{
    std::string text; //!< body without the // or making slashes
    int line;         //!< 1-based line the comment starts on
    int endLine;      //!< last line the comment touches (block comments)
};

/** The lexed view of one file: code tokens plus comments. */
struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/** Lex @p source. Never throws; unrecognized bytes become Punct. */
LexResult lex(std::string_view source);

/**
 * Test-only fault injection: when enabled, lex() deliberately stops
 * counting newlines inside block comments, so every token after a
 * multi-line block comment carries a wrong line number. The fuzz
 * oracle's mutation self-test (src/check/fuzz.cc) turns this on to
 * prove its lexer invariants have teeth. Never enable outside tests.
 */
void setLexerFaultInjection(bool enabled);

} // namespace memo::lint

#endif // MEMO_LINT_LEXER_HH
