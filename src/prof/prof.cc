#include "prof.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <unordered_map>

#include <sys/resource.h>

#include "obs/stats.hh"
#include "obs/tracer.hh"

namespace memo::prof
{

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace
{

/** Process-unique profiler ids, so the thread-local buffer cache can
 *  never confuse a profiler with a previously destroyed one that was
 *  allocated at the same address. */
std::atomic<uint64_t> next_profiler_id{1};

/** This thread's buffer pointer per profiler id. */
thread_local std::unordered_map<uint64_t, void *> tls_bufs;

} // anonymous namespace

Profiler::Profiler()
    : id_(next_profiler_id.fetch_add(1, std::memory_order_relaxed))
{
}

Profiler::~Profiler() = default;

Profiler &
Profiler::global()
{
    // Internally synchronized singleton: buffer registration takes m_
    // and all hot-path writes go through thread-local buffers.
    static Profiler profiler; // NOLINT(memo-CONC-003)
    return profiler;
}

void
Profiler::setEnabled(bool on)
{
    if (on) {
        uint64_t expected = 0;
        epoch_.compare_exchange_strong(expected, nowNs(),
                                       std::memory_order_relaxed);
    }
    enabled_.store(on, std::memory_order_relaxed);
}

Profiler::Buf &
Profiler::localBuf()
{
    auto it = tls_bufs.find(id_);
    if (it != tls_bufs.end())
        return *static_cast<Buf *>(it->second);
    MutexLock lock(m_);
    bufs_.push_back(std::make_unique<Buf>());
    Buf *buf = bufs_.back().get();
    buf->tid = static_cast<uint32_t>(bufs_.size());
    tls_bufs.emplace(id_, buf);
    return *buf;
}

void
Profiler::record(std::string name, uint64_t t0_ns, uint64_t t1_ns,
                 uint32_t depth)
{
    Buf &buf = localBuf();
    buf.spans.push_back(
        Span{std::move(name), t0_ns, t1_ns, buf.tid, depth});
}

std::vector<Span>
Profiler::snapshot() const
{
    std::vector<Span> out;
    {
        MutexLock lock(m_);
        for (const auto &buf : bufs_)
            out.insert(out.end(), buf->spans.begin(),
                       buf->spans.end());
    }
    std::sort(out.begin(), out.end(),
              [](const Span &a, const Span &b) {
                  if (a.t0Ns != b.t0Ns)
                      return a.t0Ns < b.t0Ns;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.t1Ns > b.t1Ns; // outermost first
              });
    return out;
}

size_t
Profiler::size() const
{
    MutexLock lock(m_);
    size_t n = 0;
    for (const auto &buf : bufs_)
        n += buf->spans.size();
    return n;
}

void
Profiler::clear()
{
    MutexLock lock(m_);
    for (auto &buf : bufs_)
        buf->spans.clear();
}

void
Profiler::exportChromeTrace(std::ostream &os,
                            const obs::EventTracer *table_events) const
{
    // Host spans as "ph":"X" duration events (pid 2, one tid per
    // recording thread), table events appended as the tracer's usual
    // instant events (pid 1, one tid per operation class). The two
    // pids render as separate named processes in chrome://tracing.
    std::vector<Span> spans = snapshot();
    uint64_t epoch = epochNs();

    os << "{\"traceEvents\": [";
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        os << (first ? "\n " : ",\n ");
        first = false;
        return os;
    };
    sep() << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2"
          << ", \"args\": {\"name\": \"host (memo::prof)\"}}";
    if (table_events)
        sep() << "{\"name\": \"process_name\", \"ph\": \"M\", "
                 "\"pid\": 1, \"args\": {\"name\": "
                 "\"memo-tables (obs::EventTracer)\"}}";

    char num[64];
    for (const Span &s : spans) {
        uint64_t t0 = s.t0Ns >= epoch ? s.t0Ns - epoch : 0;
        uint64_t dur = s.t1Ns >= s.t0Ns ? s.t1Ns - s.t0Ns : 0;
        sep() << "{\"name\": \"" << s.name
              << "\", \"cat\": \"host\", \"ph\": \"X\", \"ts\": ";
        std::snprintf(num, sizeof num, "%.3f",
                      static_cast<double>(t0) / 1000.0);
        os << num << ", \"dur\": ";
        std::snprintf(num, sizeof num, "%.3f",
                      static_cast<double>(dur) / 1000.0);
        os << num << ", \"pid\": 2, \"tid\": " << s.tid
           << ", \"args\": {\"depth\": " << s.depth << "}}";
    }
    if (table_events)
        table_events->appendEventsJson(os, first);

    os << "\n],\n\"metadata\": {\"hostSpans\": " << spans.size()
       << ", \"peakRssBytes\": " << peakRssBytes();
    if (table_events)
        os << ", \"tableEventsOffered\": " << table_events->offered()
           << ", \"tableEventsRecorded\": "
           << table_events->recorded();
    os << "}}\n";
}

ProfSpan::ProfSpan(std::string name, Profiler &profiler)
{
    if (!profiler.enabled())
        return;
    buf_ = &profiler.localBuf();
    name_ = std::move(name);
    depth_ = buf_->depth++;
    t0_ = nowNs();
}

ProfSpan::~ProfSpan()
{
    if (!buf_)
        return;
    uint64_t t1 = nowNs();
    buf_->depth--;
    buf_->spans.push_back(
        Span{std::move(name_), t0_, t1, buf_->tid, depth_});
}

uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

std::string
cpuModelName()
{
    std::FILE *f = std::fopen("/proc/cpuinfo", "r");
    if (!f)
        return "unknown";
    char line[512];
    std::string model = "unknown";
    while (std::fgets(line, sizeof line, f)) {
        std::string s(line);
        if (s.rfind("model name", 0) != 0)
            continue;
        size_t colon = s.find(':');
        if (colon == std::string::npos)
            break;
        size_t b = colon + 1;
        while (b < s.size() && s[b] == ' ')
            b++;
        size_t e = s.find_last_not_of(" \n\r");
        if (e != std::string::npos && e >= b)
            model = s.substr(b, e - b + 1);
        break;
    }
    std::fclose(f);
    return model;
}

void
publishProcessStats(obs::StatsRegistry &reg, const Profiler &profiler)
{
    reg.gaugeMax("prof.process.peakRssBytes", peakRssBytes());
    reg.gaugeMax("prof.process.spans", profiler.size());
}

} // namespace memo::prof
