/**
 * @file
 * Versioned benchmark-record schema and the noise-aware regression
 * gate behind memo-bench.
 *
 * Every perf artifact of the repository (BENCH_history.json from
 * memo-bench, BENCH_sweep.json from bench_sweep_scaling) is one JSON
 * document `{"schema": N, "records": [...]}` whose records carry the
 * scenario name, warmup/repetition counts, the robust summary of the
 * wall-clock samples (median and MAD — the paper-sound statistics
 * for skewed timing noise), the raw samples themselves, free-form
 * scenario metrics, and an environment manifest (git sha, compiler,
 * build flags, CPU model, hardware threads) so a number is never
 * separated from the machine that produced it.
 *
 * The gate (gateCompare) compares each scenario's current median
 * against the most recent record of the same scenario in the
 * history. A regression is declared only when the current median
 * exceeds baseline + max(rel_slack * baseline, mad_k * MAD, abs
 * floor) — MAD-scaled so a noisy scenario earns a wide band and a
 * stable one stays tight, with an absolute floor so microsecond
 * scenarios cannot flake the gate.
 */

#ifndef MEMO_PROF_BENCH_RECORD_HH
#define MEMO_PROF_BENCH_RECORD_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memo::prof
{

/** Version of the BENCH_*.json document layout. */
constexpr int benchSchemaVersion = 1;

/** Where (and from what) a benchmark record was measured. */
struct EnvManifest
{
    std::string gitSha;   //!< configure-time HEAD, or "unknown"
    std::string compiler; //!< "gcc 13.2.0" / "clang ..."
    std::string flags;    //!< CXX flags of the build type
    std::string cpu;      //!< /proc/cpuinfo model name
    unsigned hwThreads = 0;

    /** The manifest of this build on this machine. */
    static EnvManifest collect();
};

/** One scenario's measured result. */
struct BenchRecord
{
    std::string scenario; //!< registered scenario name
    std::string suite;    //!< suite it ran under ("quick", "sweep")
    unsigned reps = 0;    //!< timed repetitions
    unsigned warmup = 0;  //!< discarded warmup repetitions
    unsigned jobs = 0;    //!< worker threads the scenario used
    double medianSec = 0; //!< median of samplesSec
    double madSec = 0;    //!< median absolute deviation
    double minSec = 0;
    double maxSec = 0;
    std::vector<double> samplesSec; //!< per-rep wall seconds
    /** Scenario metrics (items/s, sweep points, speedup, ...). */
    std::map<std::string, double> extra;
    EnvManifest env;
};

/** Median of @p xs (empty -> 0). Does not require sorted input. */
double medianOf(std::vector<double> xs);

/** Median absolute deviation of @p xs around @p median. */
double madOf(const std::vector<double> &xs, double median);

/** Fill median/mad/min/max of @p r from its samplesSec. */
void summarizeSamples(BenchRecord &r);

/** Render records as the canonical schema-versioned JSON document. */
std::string renderBenchJson(const std::vector<BenchRecord> &records);

/**
 * Parse a BENCH_*.json document. @return false (with @p error set)
 * on malformed input or an unsupported schema version.
 */
bool parseBenchJson(const std::string &json,
                    std::vector<BenchRecord> &out, std::string &error);

/** Read @p path; a missing file yields an empty record list. */
bool readBenchFile(const std::string &path,
                   std::vector<BenchRecord> &out, std::string &error);

/** Write @p records to @p path as the canonical document. */
bool writeBenchFile(const std::string &path,
                    const std::vector<BenchRecord> &records);

/** Gate tolerances (see file comment for the formula). */
struct GateOptions
{
    double relSlack = 0.30;    //!< fraction of baseline median
    double madK = 5.0;         //!< MAD multiples added to the band
    double absFloorSec = 0.005; //!< minimum band width in seconds
};

/** One scenario's gate verdict. */
struct GateRow
{
    std::string scenario;
    double baselineSec = -1; //!< baseline median (-1 when new)
    double currentSec = 0;   //!< current median
    double thresholdSec = 0; //!< baseline + allowed band (0 when new)
    double deltaPct = 0;     //!< (current/baseline - 1) * 100
    bool isNew = false;      //!< no baseline in the history
    bool regressed = false;
};

/**
 * Compare @p current against the latest same-scenario records in
 * @p history. Scenarios with no history pass as new.
 */
std::vector<GateRow> gateCompare(
    const std::vector<BenchRecord> &history,
    const std::vector<BenchRecord> &current,
    const GateOptions &opt = GateOptions{});

} // namespace memo::prof

#endif // MEMO_PROF_BENCH_RECORD_HH
