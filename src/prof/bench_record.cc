#include "bench_record.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "prof.hh"

#ifndef MEMO_GIT_SHA
#define MEMO_GIT_SHA "unknown"
#endif
#ifndef MEMO_BUILD_FLAGS
#define MEMO_BUILD_FLAGS ""
#endif

namespace memo::prof
{

EnvManifest
EnvManifest::collect()
{
    EnvManifest env;
    env.gitSha = MEMO_GIT_SHA;
#if defined(__clang__)
    env.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    env.compiler = std::string("gcc ") + __VERSION__;
#else
    env.compiler = "unknown";
#endif
    env.flags = MEMO_BUILD_FLAGS;
    env.cpu = cpuModelName();
    env.hwThreads = std::thread::hardware_concurrency();
    return env;
}

double
medianOf(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
madOf(const std::vector<double> &xs, double median)
{
    if (xs.empty())
        return 0.0;
    std::vector<double> dev;
    dev.reserve(xs.size());
    for (double x : xs)
        dev.push_back(std::fabs(x - median));
    return medianOf(std::move(dev));
}

void
summarizeSamples(BenchRecord &r)
{
    r.reps = static_cast<unsigned>(r.samplesSec.size());
    r.medianSec = medianOf(r.samplesSec);
    r.madSec = madOf(r.samplesSec, r.medianSec);
    if (r.samplesSec.empty()) {
        r.minSec = r.maxSec = 0.0;
        return;
    }
    auto [lo, hi] = std::minmax_element(r.samplesSec.begin(),
                                        r.samplesSec.end());
    r.minSec = *lo;
    r.maxSec = *hi;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
num(double v)
{
    // Shortest-ish stable rendering; %.9g round-trips a timing in
    // seconds comfortably and never emits locale separators.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    // JSON has no inf/nan literals.
    if (std::strchr(buf, 'n') || std::strchr(buf, 'i'))
        return "0";
    return buf;
}

} // anonymous namespace

std::string
renderBenchJson(const std::vector<BenchRecord> &records)
{
    std::ostringstream os;
    os << "{\n  \"schema\": " << benchSchemaVersion
       << ",\n  \"records\": [";
    bool first_rec = true;
    for (const BenchRecord &r : records) {
        os << (first_rec ? "\n" : ",\n");
        first_rec = false;
        os << "    {\"scenario\": \"" << jsonEscape(r.scenario)
           << "\", \"suite\": \"" << jsonEscape(r.suite)
           << "\",\n     \"reps\": " << r.reps << ", \"warmup\": "
           << r.warmup << ", \"jobs\": " << r.jobs
           << ",\n     \"median_s\": " << num(r.medianSec)
           << ", \"mad_s\": " << num(r.madSec) << ", \"min_s\": "
           << num(r.minSec) << ", \"max_s\": " << num(r.maxSec)
           << ",\n     \"samples_s\": [";
        for (size_t i = 0; i < r.samplesSec.size(); i++)
            os << (i ? ", " : "") << num(r.samplesSec[i]);
        os << "],\n     \"extra\": {";
        bool first_x = true;
        for (const auto &[k, v] : r.extra) {
            os << (first_x ? "" : ", ") << "\"" << jsonEscape(k)
               << "\": " << num(v);
            first_x = false;
        }
        os << "},\n     \"env\": {\"git_sha\": \""
           << jsonEscape(r.env.gitSha) << "\", \"compiler\": \""
           << jsonEscape(r.env.compiler) << "\", \"flags\": \""
           << jsonEscape(r.env.flags) << "\",\n             \"cpu\": \""
           << jsonEscape(r.env.cpu) << "\", \"hw_threads\": "
           << r.env.hwThreads << "}}";
    }
    os << (first_rec ? "]\n}\n" : "\n  ]\n}\n");
    return os.str();
}

namespace
{

/**
 * The smallest JSON reader that handles the bench format (and
 * reasonable hand edits of it): objects, arrays, strings with
 * escapes, numbers including floats. Unknown keys are skipped, so
 * the schema can grow without breaking old readers.
 */
struct MiniJson
{
    const std::string &s;
    size_t i = 0;
    std::string err;

    void
    skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                s[i] == '\r'))
            i++;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            i++;
            return true;
        }
        err = std::string("expected '") + c + "'";
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return i < s.size() && s[i] == c;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size()) {
                i++;
                switch (s[i]) {
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  default:
                    out += s[i];
                }
            } else {
                out += s[i];
            }
            i++;
        }
        return expect('"');
    }

    bool
    parseNumber(double &out)
    {
        skipWs();
        const char *begin = s.c_str() + i;
        char *end = nullptr;
        out = std::strtod(begin, &end);
        if (end == begin) {
            err = "expected number";
            return false;
        }
        i += static_cast<size_t>(end - begin);
        return true;
    }

    /** Skip any JSON value (for unknown keys). */
    bool
    skipValue()
    {
        skipWs();
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '"') {
            std::string tmp;
            return parseString(tmp);
        }
        if (c == '{' || c == '[') {
            int depth = 0;
            bool in_str = false;
            for (; i < s.size(); i++) {
                if (in_str) {
                    if (s[i] == '\\')
                        i++;
                    else if (s[i] == '"')
                        in_str = false;
                    continue;
                }
                if (s[i] == '"')
                    in_str = true;
                else if (s[i] == '{' || s[i] == '[')
                    depth++;
                else if (s[i] == '}' || s[i] == ']')
                    depth--;
                if (depth == 0) {
                    i++;
                    return true;
                }
            }
            return false;
        }
        while (i < s.size() && s[i] != ',' && s[i] != '}' &&
               s[i] != ']')
            i++;
        return true;
    }

    /** Iterate an object's keys: calls @p on_key(key) per member. */
    template <typename Fn>
    bool
    parseObject(Fn &&on_key)
    {
        if (!expect('{'))
            return false;
        while (!peek('}')) {
            std::string key;
            if (!parseString(key) || !expect(':'))
                return false;
            if (!on_key(key))
                return false;
            if (!peek('}') && !expect(','))
                return false;
        }
        return expect('}');
    }
};

bool
parseEnv(MiniJson &p, EnvManifest &env)
{
    return p.parseObject([&](const std::string &k) {
        double d = 0;
        if (k == "git_sha")
            return p.parseString(env.gitSha);
        if (k == "compiler")
            return p.parseString(env.compiler);
        if (k == "flags")
            return p.parseString(env.flags);
        if (k == "cpu")
            return p.parseString(env.cpu);
        if (k == "hw_threads") {
            if (!p.parseNumber(d))
                return false;
            env.hwThreads = static_cast<unsigned>(d);
            return true;
        }
        return p.skipValue();
    });
}

bool
parseRecord(MiniJson &p, BenchRecord &r)
{
    return p.parseObject([&](const std::string &k) {
        double d = 0;
        if (k == "scenario")
            return p.parseString(r.scenario);
        if (k == "suite")
            return p.parseString(r.suite);
        if (k == "env")
            return parseEnv(p, r.env);
        if (k == "samples_s") {
            if (!p.expect('['))
                return false;
            while (!p.peek(']')) {
                if (!p.parseNumber(d))
                    return false;
                r.samplesSec.push_back(d);
                if (!p.peek(']') && !p.expect(','))
                    return false;
            }
            return p.expect(']');
        }
        if (k == "extra") {
            return p.parseObject([&](const std::string &xk) {
                if (!p.parseNumber(d))
                    return false;
                r.extra[xk] = d;
                return true;
            });
        }
        if (!p.parseNumber(d))
            return false;
        if (k == "reps")
            r.reps = static_cast<unsigned>(d);
        else if (k == "warmup")
            r.warmup = static_cast<unsigned>(d);
        else if (k == "jobs")
            r.jobs = static_cast<unsigned>(d);
        else if (k == "median_s")
            r.medianSec = d;
        else if (k == "mad_s")
            r.madSec = d;
        else if (k == "min_s")
            r.minSec = d;
        else if (k == "max_s")
            r.maxSec = d;
        return true;
    });
}

} // anonymous namespace

bool
parseBenchJson(const std::string &json, std::vector<BenchRecord> &out,
               std::string &error)
{
    out.clear();
    MiniJson p{json};
    double schema = 0;
    bool ok = p.parseObject([&](const std::string &key) {
        if (key == "schema")
            return p.parseNumber(schema);
        if (key == "records") {
            if (!p.expect('['))
                return false;
            while (!p.peek(']')) {
                BenchRecord r;
                if (!parseRecord(p, r))
                    return false;
                out.push_back(std::move(r));
                if (!p.peek(']') && !p.expect(','))
                    return false;
            }
            return p.expect(']');
        }
        return p.skipValue();
    });
    if (!ok) {
        error = p.err.empty() ? "malformed bench JSON" : p.err;
        return false;
    }
    if (static_cast<int>(schema) != benchSchemaVersion) {
        error = "unsupported bench schema version " +
                std::to_string(static_cast<int>(schema));
        return false;
    }
    return true;
}

bool
readBenchFile(const std::string &path, std::vector<BenchRecord> &out,
              std::string &error)
{
    out.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return true; // missing history is an empty history
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseBenchJson(ss.str(), out, error);
}

bool
writeBenchFile(const std::string &path,
               const std::vector<BenchRecord> &records)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << renderBenchJson(records);
    return static_cast<bool>(out);
}

std::vector<GateRow>
gateCompare(const std::vector<BenchRecord> &history,
            const std::vector<BenchRecord> &current,
            const GateOptions &opt)
{
    std::vector<GateRow> rows;
    for (const BenchRecord &cur : current) {
        GateRow row;
        row.scenario = cur.scenario;
        row.currentSec = cur.medianSec;

        // Baseline: the most recent history record of this scenario.
        const BenchRecord *base = nullptr;
        for (const BenchRecord &h : history)
            if (h.scenario == cur.scenario)
                base = &h;

        if (!base) {
            row.isNew = true;
            rows.push_back(std::move(row));
            continue;
        }
        double mad = std::max(base->madSec, cur.madSec);
        double band = std::max({opt.relSlack * base->medianSec,
                                opt.madK * mad, opt.absFloorSec});
        row.baselineSec = base->medianSec;
        row.thresholdSec = base->medianSec + band;
        row.deltaPct =
            base->medianSec > 0
                ? (cur.medianSec / base->medianSec - 1.0) * 100.0
                : 0.0;
        row.regressed = cur.medianSec > row.thresholdSec;
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace memo::prof
