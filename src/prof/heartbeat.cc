#include "heartbeat.hh"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "prof.hh"

namespace memo::prof
{

Heartbeat::Heartbeat(std::string label, uint64_t total,
                     double interval, std::ostream *os)
    : label_(std::move(label)), total_(total),
      intervalNs_(static_cast<uint64_t>(
          (interval > 0.01 ? interval : 0.01) * 1e9)),
      startNs_(nowNs()), os_(os ? os : &std::cerr)
{
    thread_ = std::thread([this] { loop(); }); // NOLINT(memo-CONC-001)
}

Heartbeat::~Heartbeat()
{
    stop();
}

void
Heartbeat::stop()
{
    // Joining is always done with m_ released: the display thread
    // must reacquire m_ to leave its timed wait, so a join under the
    // lock could never complete.
    bool first = false;
    {
        MutexLock lk(m_);
        if (!stopping_) {
            stopping_ = true;
            first = true;
        }
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    if (!first)
        return;
    // Land the final state on its own completed line, even when the
    // run finished before the first refresh fired.
    printLine(done_.load(std::memory_order_relaxed), nowNs());
    *os_ << "\n";
    os_->flush();
}

void
Heartbeat::loop()
{
    UniqueLock lk(m_);
    for (;;) {
        // Manual timed wait (not the predicate overload): the
        // thread-safety analysis cannot see that a wait predicate
        // runs with the lock held, so the guarded read of stopping_
        // stays in this scope. A timeout means "refresh the line".
        while (!stopping_) {
            if (cv_.wait_for(lk.native(),
                             std::chrono::nanoseconds(intervalNs_)) ==
                std::cv_status::timeout)
                break;
        }
        if (stopping_)
            return;
        lk.unlock();
        printLine(done_.load(std::memory_order_relaxed), nowNs());
        os_->flush();
        lk.lock();
    }
}

void
Heartbeat::printLine(uint64_t done, uint64_t now_ns)
{
    double elapsed =
        static_cast<double>(now_ns - startNs_) / 1e9;
    double rate = elapsed > 0
                      ? static_cast<double>(done) / elapsed
                      : 0.0;
    char buf[192];
    if (total_ > 0) {
        double pct = 100.0 * static_cast<double>(done) /
                     static_cast<double>(total_);
        double eta = rate > 0 && total_ > done
                         ? static_cast<double>(total_ - done) / rate
                         : 0.0;
        std::snprintf(buf, sizeof buf,
                      "\r[%s] %llu/%llu (%.1f%%) %.3g/s eta %.0fs   ",
                      label_.c_str(),
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total_), pct,
                      rate, eta);
    } else {
        std::snprintf(buf, sizeof buf,
                      "\r[%s] %llu done, %.3g/s, %.0fs elapsed   ",
                      label_.c_str(),
                      static_cast<unsigned long long>(done), rate,
                      elapsed);
    }
    *os_ << buf;
}

} // namespace memo::prof
