/**
 * @file
 * Stderr progress heartbeat for long-running CLI operations.
 *
 * A Heartbeat owns a background thread that periodically rewrites one
 * carriage-return-terminated status line — items done, rate, ETA —
 * from an atomic counter that the instrumented hot loop bumps with
 * plain relaxed adds (no locks, no clocks on the worker side). It is
 * strictly an stderr affordance: nothing is ever written to stdout,
 * so golden diffs and piped output stay byte-stable whether or not a
 * heartbeat is running, and the instrumented computation itself stays
 * deterministic (the counter feeds display only).
 *
 * Off by default everywhere; the memo-sim / memo-fuzz `--progress`
 * flags construct one.
 */

#ifndef MEMO_PROF_HEARTBEAT_HH
#define MEMO_PROF_HEARTBEAT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <thread>

#include "core/annotations.hh"

namespace memo::prof
{

/** A background rate/ETA line writer over an atomic progress counter. */
class Heartbeat
{
  public:
    /**
     * Start the heartbeat thread.
     *
     * @param label    line prefix ("replay", "fuzz")
     * @param total    expected item count (0 = unknown: no ETA/percent)
     * @param interval seconds between line refreshes
     * @param os       sink; nullptr = std::cerr (tests pass a stream)
     */
    explicit Heartbeat(std::string label, uint64_t total = 0,
                       double interval = 0.5,
                       std::ostream *os = nullptr);

    /** Stops and joins the thread; ends the status line. */
    ~Heartbeat();

    Heartbeat(const Heartbeat &) = delete;
    Heartbeat &operator=(const Heartbeat &) = delete;

    /** Bump the progress counter from the instrumented loop. */
    void tick(uint64_t n = 1)
    {
        done_.fetch_add(n, std::memory_order_relaxed);
    }

    /** The counter itself, for hooks that take an atomic pointer. */
    std::atomic<uint64_t> &counter() { return done_; }

    /** Stop early (idempotent; the destructor calls it too). */
    void stop();

  private:
    void loop();
    void printLine(uint64_t done, uint64_t now_ns);

    const std::string label_;
    const uint64_t total_;
    const uint64_t intervalNs_;
    const uint64_t startNs_;
    std::ostream *const os_; //!< never stdout

    std::atomic<uint64_t> done_{0};
    bool stopping_ MEMO_GUARDED_BY(m_) = false;
    Mutex m_;
    std::condition_variable cv_;
    // The display thread is deliberately detached from the executor:
    // it must keep printing while the pool is saturated, and it only
    // reads an atomic and writes stderr. Built in the constructor and
    // joined by the first stop() after it releases m_.
    std::thread thread_ MEMO_UNGUARDED; // NOLINT(memo-CONC-001)
};

} // namespace memo::prof

#endif // MEMO_PROF_HEARTBEAT_HH
