/**
 * @file
 * Host-performance profiling: scoped wall-clock spans and process
 * counters for the simulator itself.
 *
 * Everything else in this repository measures the *simulated*
 * machine; this layer measures the machine running the simulation —
 * how long each phase of a run takes, how hard the ThreadPool workers
 * work, how much memory the process peaks at. A ProfSpan is an RAII
 * scope timer: construction stamps a start time, destruction appends
 * one completed span to a thread-local buffer owned by the Profiler,
 * so recording never contends on a lock. A snapshot merges every
 * thread's buffer and the result exports as Chrome-trace duration
 * events — optionally into the *same* file as the obs::EventTracer's
 * simulated table events, so host time and simulated activity share
 * one chrome://tracing timeline.
 *
 * Determinism contract: profiling is OFF by default and every clock
 * read is gated on Profiler::enabled(). With profiling off, a
 * ProfSpan constructs to an inert no-op, no wall-clock is read, and
 * nothing is written anywhere — the bit-identical-at-any---jobs
 * guarantees of the golden/exactness suites are untouched. Wall-clock
 * use is sanctioned here and only here (plus the seeded fuzzer); see
 * the memo-DET-002 carve-out in src/lint/analyzer.cc.
 */

#ifndef MEMO_PROF_PROF_HH
#define MEMO_PROF_PROF_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/annotations.hh"

namespace memo::obs
{
class EventTracer;
class StatsRegistry;
} // namespace memo::obs

namespace memo::prof
{

/**
 * Monotonic wall-clock nanoseconds (steady_clock). The single
 * sanctioned clock read of the codebase: callers outside src/prof
 * use this instead of naming a clock, so the memo-DET-002 lint rule
 * keeps its teeth everywhere else.
 */
uint64_t nowNs();

/** One completed, flushed span. */
struct Span
{
    std::string name; //!< scope label ("build_trace", "memo_replay")
    uint64_t t0Ns;    //!< start, nowNs() domain
    uint64_t t1Ns;    //!< end, nowNs() domain
    uint32_t tid;     //!< profiler-assigned thread track (1-based)
    uint32_t depth;   //!< nesting depth on that thread (0 = outermost)
};

/**
 * The span collector. Most code uses the process-wide instance
 * (global()); tests create private instances. Writes go to per-thread
 * buffers registered under a mutex on first touch (the StatsRegistry
 * shard pattern); snapshot() assumes quiescence — no live ProfSpan on
 * another thread — which holds whenever exec::parallelFor has
 * returned.
 */
class Profiler
{
  public:
    Profiler();  //!< A disabled profiler with no buffers yet.
    ~Profiler(); //!< Unregisters the id from thread-local caches.

    Profiler(const Profiler &) = delete;            //!< Buffers pin the address.
    Profiler &operator=(const Profiler &) = delete; //!< Buffers pin the address.

    /** The process-wide profiler (what --profile flags enable). */
    static Profiler &global();

    /**
     * Turn span recording on or off. The first enable stamps the
     * export epoch (timestamps in Chrome traces are relative to it).
     */
    void setEnabled(bool on);

    /** True when spans are being recorded. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** The export epoch: nowNs() at the first enable (0 = never). */
    uint64_t epochNs() const
    {
        return epoch_.load(std::memory_order_relaxed);
    }

    /** Append one completed span to this thread's buffer. */
    void record(std::string name, uint64_t t0_ns, uint64_t t1_ns,
                uint32_t depth);

    /** Merge every thread's buffer, sorted by (t0, tid, -t1). */
    std::vector<Span> snapshot() const;

    /** Spans recorded so far across all threads. */
    size_t size() const;

    /** Drop all recorded spans (requires quiescence). */
    void clear();

    /**
     * Write the recorded spans as Chrome-trace JSON ("ph":"X"
     * duration events, microsecond timestamps relative to the
     * epoch). When @p table_events is non-null its retained records
     * are appended to the same "traceEvents" array, putting host
     * spans and simulated MEMO-TABLE events on one timeline.
     */
    void exportChromeTrace(std::ostream &os,
                           const obs::EventTracer *table_events =
                               nullptr) const;

  private:
    friend class ProfSpan;

    struct Buf
    {
        uint32_t tid = 0;   //!< stable per-thread track id
        uint32_t depth = 0; //!< live nesting depth (ctor/dtor only)
        std::vector<Span> spans;
    };

    /** This thread's buffer (registered on first use). */
    Buf &localBuf();

    const uint64_t id_; //!< distinguishes re-allocated profilers
    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> epoch_{0};
    mutable Mutex m_;
    /// Buffer ownership; recording through a registered Buf* touches
    /// thread-private state without locking (see the class comment) —
    /// only registration and whole-profiler folds lock.
    std::vector<std::unique_ptr<Buf>> bufs_ MEMO_GUARDED_BY(m_);
};

/**
 * RAII scope timer. When the profiler is disabled at construction the
 * span is inert (no clock read, no buffer touch); otherwise the
 * destructor appends one Span carrying this thread's nesting depth.
 */
class ProfSpan
{
  public:
    explicit ProfSpan(std::string name,
                      Profiler &profiler = Profiler::global());
    ~ProfSpan();

    ProfSpan(const ProfSpan &) = delete;
    ProfSpan &operator=(const ProfSpan &) = delete;

  private:
    Profiler::Buf *buf_ = nullptr; //!< null when recording is off
    std::string name_;
    uint64_t t0_ = 0;
    uint32_t depth_ = 0;
};

/**
 * Peak resident set size of this process in bytes (getrusage
 * ru_maxrss), or 0 when the platform does not report it.
 */
uint64_t peakRssBytes();

/** First "model name" from /proc/cpuinfo, or "unknown". */
std::string cpuModelName();

/**
 * Fold the process counters into @p reg as gauges
 * (prof.process.peakRssBytes, prof.process.spans). Idempotent
 * (gauges take the max), so harnesses may publish at every report
 * point. Never called with profiling off by any library code — the
 * registry's jobs-invariance contract is the caller's to keep.
 */
void publishProcessStats(obs::StatsRegistry &reg,
                         const Profiler &profiler);

} // namespace memo::prof

#endif // MEMO_PROF_PROF_HH
