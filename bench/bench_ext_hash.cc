/**
 * @file
 * Extension ablation: the fp set-index hash. The paper's literal
 * scheme XORs the top mantissa bits of both operands, which maps
 * every squaring operation (x*x) to set 0; the additive scheme
 * spreads squares while remaining symmetric for commutative lookups.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("fp index-hash ablation: paper XOR vs additive "
                       "(32/4 tables)",
                       "design-choice ablation; DESIGN.md section 5");

    TextTable t({"application", "fm xor", "fm add", "fd xor",
                 "fd add"});

    double sx = 0, sa = 0;
    int n = 0;
    for (const auto &k : mmKernels()) {
        MemoConfig xor_cfg;
        xor_cfg.hashScheme = HashScheme::PaperXor;
        MemoConfig add_cfg;
        add_cfg.hashScheme = HashScheme::Additive;

        auto hits = measureMmKernelConfigs(k, {xor_cfg, add_cfg},
                                           bench::benchCrop);
        UnitHits hx = hits[0];
        UnitHits ha = hits[1];
        t.addRow({k.name, TextTable::ratio(hx.fpMul),
                  TextTable::ratio(ha.fpMul),
                  TextTable::ratio(hx.fpDiv),
                  TextTable::ratio(ha.fpDiv)});
        if (hx.fpMul >= 0) {
            sx += hx.fpMul;
            sa += ha.fpMul;
            n++;
        }
    }
    t.addRow({"average (fm)", TextTable::ratio(sx / n),
              TextTable::ratio(sa / n), "", ""});
    t.print(std::cout);

    std::cout << "\nShape to check: kernels that square values (vdiff, "
                 "vspatial, venhance,\nvkmeans) lose multiplication "
                 "hits under the XOR hash because every x*x\nindexes "
                 "set 0; the additive hash recovers them. Division is "
                 "unaffected.\n";
    return 0;
}
