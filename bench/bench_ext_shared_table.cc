/**
 * @file
 * Extension (paper section 2.3): several instances of the same
 * computation unit. Compares two private 32-entry MEMO-TABLEs (one
 * per divider, recurring work duplicated in both) with one shared
 * 64-entry dual-ported table (one unit reuses the other's work).
 */

#include <iostream>

#include "common.hh"
#include "core/shared_table.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Private per-unit tables vs one shared "
                       "multi-ported table (2 dividers)",
                       "paper section 2.3");

    MemoConfig priv_cfg; // 32/4 per unit
    MemoConfig shared_cfg;
    shared_cfg.entries = 64;
    shared_cfg.ways = 4;

    TextTable t({"application", "private hit", "shared hit",
                 "cross-unit hits", "port conflicts"});

    for (const auto &name : bench::speedupApps()) {
        const MmKernel &k = mmKernelByName(name);

        MemoTable priv0(Operation::FpDiv, priv_cfg);
        MemoTable priv1(Operation::FpDiv, priv_cfg);
        SharedMemoTable shared(Operation::FpDiv, shared_cfg, 2);

        uint64_t cycle = 0;
        bool any = false;
        for (const auto &ni : standardImages()) {
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            priv0.flush();
            priv1.flush();
            // Dispatch alternate divisions to alternate units
            // (round-robin issue), as a dual-divider core would.
            unsigned unit = 0;
            for (const auto &inst : trace) {
                if (inst.cls != InstClass::FpDiv)
                    continue;
                any = true;
                cycle++;
                MemoTable &priv = unit == 0 ? priv0 : priv1;
                if (!priv.lookup(inst.a, inst.b))
                    priv.update(inst.a, inst.b, inst.result);
                if (!shared.lookup(unit, cycle, inst.a, inst.b))
                    shared.update(unit, inst.a, inst.b, inst.result);
                unit ^= 1;
            }
        }
        if (!any)
            continue;

        MemoStats pooled = priv0.stats();
        pooled.merge(priv1.stats());
        t.addRow({name, TextTable::ratio(pooled.hitRatio()),
                  TextTable::ratio(shared.stats().hitRatio()),
                  TextTable::count(shared.crossUnitHits()),
                  TextTable::count(shared.portConflicts())});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: the shared table wins — round-"
                 "robin dispatch halves each\nprivate table's view of "
                 "a recurring computation, while the shared table\n"
                 "serves either unit (cross-unit hits) without port "
                 "conflicts at 2 ports.\n";
    return 0;
}
