/**
 * @file
 * Table 8: the input images — size, type, bands, entropies (full
 * image, 16x16 and 8x8 windows) and the average hit ratios of the
 * applications run on each image.
 */

#include <cmath>
#include <iostream>

#include "common.hh"
#include "img/entropy.hh"
#include "img/generate.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Input image characteristics and per-image hit "
                       "ratios",
                       "Table 8");

    MemoConfig cfg;
    TextTable t({"image", "size", "type", "bands", "full", "16x16",
                 "8x8", "imul", "fmul", "fdiv",
                 "paper e(f/16/8)", "paper h(i/m/d)"});

    for (const auto &ni : standardImages()) {
        // Pool hit ratios over every kernel that runs on this image.
        MemoBank bank = MemoBank::standard(cfg);
        for (const auto &k : mmKernels()) {
            if (k.name == "vsqrt")
                continue;
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            bank.table(Operation::IntMul)->flush();
            bank.table(Operation::FpMul)->flush();
            bank.table(Operation::FpDiv)->flush();
            replayMemo(trace, bank);
        }
        UnitHits h = hitsOf(bank);

        double ef = imageEntropy(ni.image);
        double e16 = windowEntropy(ni.image, 16);
        double e8 = windowEntropy(ni.image, 8);
        auto ent = [](double v) {
            return std::isnan(v) ? std::string("-")
                                 : TextTable::fixed(v, 2);
        };

        t.addRow({ni.name,
                  std::to_string(ni.image.width()) + "x" +
                      std::to_string(ni.image.height()),
                  std::string(pixelTypeName(ni.image.type())),
                  std::to_string(ni.image.bands()), ent(ef), ent(e16),
                  ent(e8), TextTable::ratio(h.intMul),
                  TextTable::ratio(h.fpMul), TextTable::ratio(h.fpDiv),
                  ent(ni.paperEntropyFull) + "/" +
                      ent(ni.paperEntropy16) + "/" +
                      ent(ni.paperEntropy8),
                  TextTable::ratio(ni.paperHitIntMul) + "/" +
                      TextTable::ratio(ni.paperHitFpMul) + "/" +
                      TextTable::ratio(ni.paperHitFpDiv)});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: the lower the (windowed) entropy, "
                 "the higher the hit ratios\n(quantified by Figure 2 / "
                 "bench_fig2).\n";
    return 0;
}
