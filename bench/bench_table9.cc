/**
 * @file
 * Table 9: trivial-operation handling. For eight Multi-Media
 * applications, the fraction of trivial operations and the hit ratios
 * when (a) all operations are cached, (b) only non-trivial operations
 * are cached, and (c) trivial detection is integrated into the
 * MEMO-TABLE (trivial ops count as hits).
 */

#include <iostream>

#include "common.hh"
#include "exec/parallel.hh"

using namespace memo;

namespace
{

// The measurement itself (check::measureTrivialModes) is shared with
// the table9 golden snapshot; this binary only renders it.
using ModeRow = check::TrivialModeRow;

/** All three units' rows for one application. */
struct AppRows
{
    ModeRow im, fm, fd;
};

} // anonymous namespace

int
main()
{
    bench::printHeader("Trivial-operation policies (trv fraction; hit "
                       "ratios all/non/intgr)",
                       "Table 9");

    const std::vector<std::string> &apps = check::table9Apps();

    TextTable t({"application", "im trv", "im all", "im non",
                 "im intgr", "fm trv", "fm all", "fm non", "fm intgr",
                 "fd trv", "fd all", "fd non", "fd intgr"});
    // One executor job per application; traces come from the shared
    // cache, so each (app, image) pair is recorded exactly once.
    auto rows = exec::sweep(apps, [](const std::string &name) {
        const MmKernel &k = mmKernelByName(name);
        return AppRows{
            check::measureTrivialModes(k, Operation::IntMul),
            check::measureTrivialModes(k, Operation::FpMul),
            check::measureTrivialModes(k, Operation::FpDiv)};
    });

    for (size_t ai = 0; ai < apps.size(); ai++) {
        const std::string &name = apps[ai];
        const ModeRow &im = rows[ai].im;
        const ModeRow &fm = rows[ai].fm;
        const ModeRow &fd = rows[ai].fd;
        t.addRow({name, TextTable::ratio(im.trv),
                  TextTable::ratio(im.all), TextTable::ratio(im.non),
                  TextTable::ratio(im.intgr), TextTable::ratio(fm.trv),
                  TextTable::ratio(fm.all), TextTable::ratio(fm.non),
                  TextTable::ratio(fm.intgr), TextTable::ratio(fd.trv),
                  TextTable::ratio(fd.all), TextTable::ratio(fd.non),
                  TextTable::ratio(fd.intgr)});
    }
    t.print(std::cout);

    std::cout << "\nPaper averages: int mult trv .50, all .55, non "
                 ".56, intgr .76;\n fp mult trv .25, all .41, non .41, "
                 "intgr .54; fp div trv .03, all/non/intgr .40.\nShape "
                 "to check: integrated trivial detection gives the "
                 "highest ratios; caching\ntrivial ops pollutes the "
                 "table for some applications and helps others.\n";
    return 0;
}
