/**
 * @file
 * Extension: how much of the serial-model speedup survives once
 * instructions overlap. The paper counts strictly serial cycles and
 * concedes its multiplication numbers are optimistic; the overlapped
 * in-order model (pipelined multiplier, unpipelined divider with
 * structural hazards) quantifies that concession.
 */

#include <iostream>

#include "common.hh"
#include "sim/pipeline.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Serial vs overlapped cycle model (3/13 FPU, "
                       "mult+div memoized)",
                       "paper section 3.3's pipelining caveat");

    TextTable t({"application", "serial speedup", "overlap speedup",
                 "div stalls base", "div stalls memo"});

    CpuConfig serial_cfg;
    serial_cfg.lat = LatencyConfig::custom(3, 13);
    CpuModel serial(serial_cfg);
    PipelineConfig pipe_cfg;
    pipe_cfg.lat = LatencyConfig::custom(3, 13);
    InOrderPipeline pipe(pipe_cfg);

    MemoConfig cfg;
    for (const auto &name : bench::speedupApps()) {
        const MmKernel &k = mmKernelByName(name);
        uint64_t s_base = 0, s_memo = 0, p_base = 0, p_memo = 0;
        uint64_t stalls_base = 0, stalls_memo = 0;
        MemoBank bank_s = MemoBank::standard(cfg);
        MemoBank bank_p = MemoBank::standard(cfg);
        for (const auto &ni : standardImages()) {
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            s_base += serial.run(trace).totalCycles;
            bank_s.reset();
            s_memo += serial.run(trace, &bank_s).totalCycles;

            PipelineResult pb = pipe.run(trace);
            p_base += pb.totalCycles;
            stalls_base += pb.divStallCycles;
            bank_p.reset();
            PipelineResult pm = pipe.run(trace, &bank_p);
            p_memo += pm.totalCycles;
            stalls_memo += pm.divStallCycles;
        }
        t.addRow({name,
                  TextTable::fixed(static_cast<double>(s_base) / s_memo,
                                   2),
                  TextTable::fixed(static_cast<double>(p_base) / p_memo,
                                   2),
                  TextTable::count(stalls_base),
                  TextTable::count(stalls_memo)});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: overlap absorbs part of the serial "
                 "gain (especially the\nmultiplier's), but memoization "
                 "still wins by eliminating divider\nstructural-hazard "
                 "stalls — visible in the stall columns.\n";
    return 0;
}
