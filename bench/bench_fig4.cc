/**
 * @file
 * Figure 4: hit ratios of the five sample Multi-Media applications as
 * a function of the LUT associativity (direct mapped to 8-way, 32
 * entries), with min/avg/max.
 */

#include <algorithm>
#include <iostream>

#include "common.hh"
#include "exec/parallel.hh"

using namespace memo;

namespace
{

const std::vector<unsigned> assocs = {1u, 2u, 4u, 8u};

std::vector<std::vector<UnitHits>>
sweepAll()
{
    std::vector<MemoConfig> cfgs;
    for (unsigned ways : assocs) {
        MemoConfig cfg;
        cfg.entries = 32;
        cfg.ways = ways;
        cfgs.push_back(cfg);
    }
    return exec::sweep(sweepKernelNames(), [&](const std::string &n) {
        return measureMmKernelConfigs(mmKernelByName(n), cfgs,
                                      bench::benchCrop);
    });
}

void
printUnit(const char *title,
          const std::vector<std::vector<UnitHits>> &all, bool div_unit)
{
    std::cout << title << "\n";
    TextTable t({"ways", "avg", "min", "max"});
    for (size_t s = 0; s < assocs.size(); s++) {
        double sum = 0.0, lo = 1.0, hi = 0.0;
        int n = 0;
        for (const auto &per_kernel : all) {
            double hr = div_unit ? per_kernel[s].fpDiv
                                 : per_kernel[s].fpMul;
            if (hr < 0)
                continue;
            sum += hr;
            lo = std::min(lo, hr);
            hi = std::max(hi, hr);
            n++;
        }
        t.addRow({TextTable::count(assocs[s]),
                  TextTable::ratio(sum / n), TextTable::ratio(lo),
                  TextTable::ratio(hi)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Hit ratio vs LUT associativity (32 entries; "
                       "vcost, venhance, vgpwl, vspatial, vsurf)",
                       "Figure 4");
    auto all = sweepAll();
    printUnit("fp division:", all, true);
    printUnit("fp multiplication:", all, false);
    std::cout << "Shape to check: conflict misses hurt the direct-"
                 "mapped table; a set size of\n2 largely fixes "
                 "division, and beyond 4 ways there is little gain.\n";
    return 0;
}
