/**
 * @file
 * Figure 4: hit ratios of the five sample Multi-Media applications as
 * a function of the LUT associativity (direct mapped to 8-way, 32
 * entries), with min/avg/max.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

namespace
{

void
printUnit(const char *title, const std::vector<unsigned> &assocs,
          const std::vector<check::BandRow> &rows)
{
    std::cout << title << "\n";
    TextTable t({"ways", "avg", "min", "max"});
    for (size_t s = 0; s < assocs.size(); s++) {
        t.addRow({TextTable::count(assocs[s]),
                  TextTable::ratio(rows[s].avg),
                  TextTable::ratio(rows[s].lo),
                  TextTable::ratio(rows[s].hi)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Hit ratio vs LUT associativity (32 entries; "
                       "vcost, venhance, vgpwl, vspatial, vsurf)",
                       "Figure 4");
    // Shared with the fig4 golden snapshot (src/check/golden.hh).
    std::vector<MemoConfig> cfgs;
    for (unsigned ways : check::fig4Ways()) {
        MemoConfig cfg;
        cfg.entries = 32;
        cfg.ways = ways;
        cfgs.push_back(cfg);
    }
    check::SweepBands bands = check::measureSweepBands(cfgs);
    printUnit("fp division:", check::fig4Ways(), bands.fpDiv);
    printUnit("fp multiplication:", check::fig4Ways(), bands.fpMul);
    std::cout << "Shape to check: conflict misses hurt the direct-"
                 "mapped table; a set size of\n2 largely fixes "
                 "division, and beyond 4 ways there is little gain.\n";
    return 0;
}
