/**
 * @file
 * Table 1: fp multiplication/division latencies of six contemporary
 * microprocessors, plus the grounding of those numbers in the SRT
 * divider / sequential multiplier timing models.
 */

#include <iostream>

#include "arith/units.hh"
#include "common.hh"
#include "sim/latency.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Processor latency presets", "Table 1");

    TextTable t({"processor", "fp mult", "fp div"});
    for (CpuPreset p : LatencyConfig::table1Presets()) {
        LatencyConfig cfg = LatencyConfig::preset(p);
        t.addRow({presetName(p),
                  TextTable::count(cfg[InstClass::FpMul]),
                  TextTable::count(cfg[InstClass::FpDiv])});
    }
    t.print(std::cout);

    std::cout << "\nDigit-recurrence timing models (bits/cycle ->"
                 " latency):\n\n";
    TextTable u({"unit", "radix", "latency (cycles)"});
    u.addRow({"SRT divider", "2 (1 bit/cyc)",
              TextTable::count(SrtDivider(1, 3).latency())});
    u.addRow({"SRT divider", "4 (2 bits/cyc)",
              TextTable::count(SrtDivider(2, 3).latency())});
    u.addRow({"SRT divider", "16 (4 bits/cyc)",
              TextTable::count(SrtDivider(4, 3).latency())});
    u.addRow({"sequential multiplier", "Booth-4 (2 bits/cyc)",
              TextTable::count(SequentialMultiplier(2, 1).latency())});
    u.addRow({"tree multiplier", "18 bits/cyc",
              TextTable::count(SequentialMultiplier(18, 1).latency())});
    u.addRow({"digit-recurrence sqrt", "4 (2 bits/cyc)",
              TextTable::count(DigitRecurrenceSqrt(2, 3).latency())});
    u.print(std::cout);

    std::cout << "\nNote: the radix-4 SRT latency (30) falls inside "
                 "Table 1's 22-40 cycle range;\nthe tree multiplier "
                 "matches the 2-5 cycle multipliers.\n";
    return 0;
}
