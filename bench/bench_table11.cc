/**
 * @file
 * Table 11: speedup when fp division is memoized, with the divider at
 * 13 or 39 cycles. For each application: the 32/4 table's hit ratio,
 * Amdahl's Fraction Enhanced and Speedup Enhanced, the predicted
 * speedup, and the speedup measured directly by the cycle model.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Speedup with fp division memoized (13 / 39 "
                       "cycle divider)",
                       "Table 11");

    bench::printSpeedups(
        check::measureSpeedups(check::SpeedupUnit::FpDiv), "@13",
        "@39");

    std::cout << "\nPaper averages: hit .48, speedup 1.05 @13 cycles "
                 "and 1.15 @39 cycles.\nShape to check: speedups grow "
                 "with the divider latency and with the hit ratio;\n"
                 "the analytic (Amdahl) and measured columns agree.\n";
    return 0;
}
