/**
 * @file
 * Table 11: speedup when fp division is memoized, with the divider at
 * 13 or 39 cycles. For each application: the 32/4 table's hit ratio,
 * Amdahl's Fraction Enhanced and Speedup Enhanced, the predicted
 * speedup, and the speedup measured directly by the cycle model.
 */

#include <iostream>

#include "common.hh"
#include "sim/amdahl.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Speedup with fp division memoized (13 / 39 "
                       "cycle divider)",
                       "Table 11");

    TextTable t({"app", "hit", "FE@13", "SE@13", "speedup@13",
                 "meas@13", "FE@39", "SE@39", "speedup@39", "meas@39"});

    double sum13 = 0.0, sum39 = 0.0, sum_hit = 0.0;
    for (const auto &name : bench::speedupApps()) {
        const MmKernel &k = mmKernelByName(name);
        auto fast = bench::measureAppCycles(
            k, LatencyConfig::custom(3, 13), false, true);
        auto slow = bench::measureAppCycles(
            k, LatencyConfig::custom(3, 39), false, true);

        double hit = fast.hitRatioFpDiv < 0 ? 0.0 : fast.hitRatioFpDiv;
        double fe13 = static_cast<double>(fast.fpDivCycles) /
                      fast.totalCycles;
        double se13 = speedupEnhanced(13, hit);
        double sp13 = amdahlSpeedup(fe13, se13);
        double meas13 = static_cast<double>(fast.totalCycles) /
                        fast.memoTotalCycles;

        double fe39 = static_cast<double>(slow.fpDivCycles) /
                      slow.totalCycles;
        double se39 = speedupEnhanced(39, hit);
        double sp39 = amdahlSpeedup(fe39, se39);
        double meas39 = static_cast<double>(slow.totalCycles) /
                        slow.memoTotalCycles;

        t.addRow({name, TextTable::ratio(hit),
                  TextTable::fixed(fe13, 3), TextTable::fixed(se13, 2),
                  TextTable::fixed(sp13, 2),
                  TextTable::fixed(meas13, 2),
                  TextTable::fixed(fe39, 3), TextTable::fixed(se39, 2),
                  TextTable::fixed(sp39, 2),
                  TextTable::fixed(meas39, 2)});
        sum13 += sp13;
        sum39 += sp39;
        sum_hit += hit;
    }
    size_t n = bench::speedupApps().size();
    t.addRow({"average", TextTable::ratio(sum_hit / n), "", "",
              TextTable::fixed(sum13 / n, 2), "", "", "",
              TextTable::fixed(sum39 / n, 2), ""});
    t.print(std::cout);

    std::cout << "\nPaper averages: hit .48, speedup 1.05 @13 cycles "
                 "and 1.15 @39 cycles.\nShape to check: speedups grow "
                 "with the divider latency and with the hit ratio;\n"
                 "the analytic (Amdahl) and measured columns agree.\n";
    return 0;
}
