/**
 * @file
 * Extension: comparison against the related-work baselines the paper
 * discusses — the Sodani/Sohi Reuse Buffer (PC-indexed, all
 * instructions) and the Oberman/Flynn reciprocal cache (divisor-
 * indexed). Reported for the fp divider across the speedup apps.
 */

#include <iostream>

#include "arith/fp.hh"
#include "common.hh"
#include "core/recip_cache.hh"
#include "core/reuse_buffer.hh"

using namespace memo;

int
main()
{
    bench::printHeader("MEMO-TABLE vs Reuse Buffer vs reciprocal cache "
                       "(fp division)",
                       "paper section 1.1");

    MemoConfig memo_cfg; // 32/4

    TextTable t({"application", "memo 32/4", "RB 32/4 (div only)",
                 "RB 1024/4 (all insts)", "recip 32/4",
                 "eff. div latency memo", "eff. recip"});

    for (const auto &name : bench::speedupApps()) {
        const MmKernel &k = mmKernelByName(name);

        MemoTable memo_t(Operation::FpDiv, memo_cfg);
        ReuseBuffer rb_small(32, 4);    // holds only divisions
        ReuseBuffer rb_large(1024, 4);  // buffers *every* instruction
        ReciprocalCache recip(32, 4);

        bool any = false;
        for (const auto &ni : standardImages()) {
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            memo_t.flush();
            for (const auto &inst : trace) {
                // The Reuse Buffer caches every instruction type: the
                // single-cycle traffic bumps long-latency entries.
                if (inst.cls == InstClass::IntAlu ||
                    inst.cls == InstClass::Branch) {
                    rb_large.update(inst.pc, 0, 0, 0);
                    continue;
                }
                if (inst.cls != InstClass::FpDiv) {
                    if (memoOperation(inst.cls))
                        rb_large.update(inst.pc, inst.a, inst.b,
                                        inst.result);
                    continue;
                }
                any = true;
                if (!memo_t.lookup(inst.a, inst.b))
                    memo_t.update(inst.a, inst.b, inst.result);
                if (!rb_small.lookup(inst.pc, inst.a, inst.b))
                    rb_small.update(inst.pc, inst.a, inst.b,
                                    inst.result);
                if (!rb_large.lookup(inst.pc, inst.a, inst.b))
                    rb_large.update(inst.pc, inst.a, inst.b,
                                    inst.result);
                if (!recip.lookup(inst.b))
                    recip.update(inst.b, fpBits(1.0 /
                                                fpFromBits(inst.b)));
            }
        }
        if (!any)
            continue;

        // Effective division latency on a 13-cycle divider: memo hits
        // finish in 1 cycle; reciprocal-cache hits still pay the
        // 3-cycle multiply.
        double hr_memo = memo_t.stats().hitRatio();
        double hr_recip = recip.stats().hitRatio();
        double eff_memo = hr_memo * 1.0 + (1.0 - hr_memo) * 13.0;
        double eff_recip = hr_recip * 3.0 + (1.0 - hr_recip) * 13.0;

        t.addRow({name, TextTable::ratio(hr_memo),
                  TextTable::ratio(rb_small.stats().hitRatio()),
                  TextTable::ratio(rb_large.stats().hitRatio()),
                  TextTable::ratio(hr_recip),
                  TextTable::fixed(eff_memo, 1),
                  TextTable::fixed(eff_recip, 1)});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: the PC-indexed Reuse Buffer needs "
                 "PC+operand matches and\nits entries are bumped by "
                 "single-cycle instructions, so the equal-budget\n"
                 "MEMO-TABLE hits more; the reciprocal cache hits on "
                 "any repeated divisor but\neach hit still costs a "
                 "multiply.\n";
    return 0;
}
