/**
 * @file
 * Microbenchmarks (google-benchmark): software cost of the MEMO-TABLE
 * primitives themselves — lookup hit/miss paths, insertion, the
 * infinite table, and the Reuse Buffer, for users embedding the
 * library in their own simulators — plus the trace-recording and
 * trace-iteration paths that dominate harness wall-clock.
 */

#include <benchmark/benchmark.h>

#include "arith/fp.hh"
#include "core/memo_table.hh"
#include "core/reuse_buffer.hh"
#include "trace/recorder.hh"
#include "trace/trace.hh"

using namespace memo;

namespace
{

void
BM_LookupHit(benchmark::State &state)
{
    MemoTable t(Operation::FpDiv, MemoConfig{});
    t.update(fpBits(10.0), fpBits(4.0), fpBits(2.5));
    for (auto _ : state) {
        auto v = t.lookup(fpBits(10.0), fpBits(4.0));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LookupHit);

void
BM_LookupMiss(benchmark::State &state)
{
    MemoTable t(Operation::FpDiv, MemoConfig{});
    double a = 1.0;
    for (auto _ : state) {
        a += 1.0; // fresh operands: guaranteed miss path
        auto v = t.lookup(fpBits(a), fpBits(4.0));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LookupMiss);

void
BM_UpdateInsert(benchmark::State &state)
{
    MemoTable t(Operation::FpDiv, MemoConfig{});
    double a = 1.0;
    for (auto _ : state) {
        a += 1.0;
        t.update(fpBits(a), fpBits(4.0), fpBits(a / 4.0));
    }
}
BENCHMARK(BM_UpdateInsert);

void
BM_AccessMixed(benchmark::State &state)
{
    // A realistic mix: a small alphabet so some accesses hit.
    MemoConfig cfg;
    cfg.entries = static_cast<unsigned>(state.range(0));
    MemoTable t(Operation::FpMul, cfg);
    uint64_t i = 0;
    for (auto _ : state) {
        double a = 1.0 + static_cast<double>(i % 64) / 64.0;
        double b = 1.0 + static_cast<double>((i / 64) % 8);
        i++;
        uint64_t r = t.access(fpBits(a), fpBits(b),
                              [&] { return fpBits(a * b); });
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_AccessMixed)->Arg(32)->Arg(1024);

void
BM_InfiniteTable(benchmark::State &state)
{
    MemoConfig cfg;
    cfg.infinite = true;
    MemoTable t(Operation::FpMul, cfg);
    uint64_t i = 0;
    for (auto _ : state) {
        double a = 1.0 + static_cast<double>(i % 4096) / 4096.0;
        i++;
        uint64_t r = t.access(fpBits(a), fpBits(3.0),
                              [&] { return fpBits(a * 3.0); });
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_InfiniteTable);

void
BM_TrivialDetection(benchmark::State &state)
{
    MemoTable t(Operation::FpMul, MemoConfig{});
    for (auto _ : state) {
        auto v = t.lookup(fpBits(1.0), fpBits(5.0));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_TrivialDetection);

void
BM_ReuseBuffer(benchmark::State &state)
{
    ReuseBuffer rb(1024, 4);
    uint64_t pc = 0;
    for (auto _ : state) {
        pc = (pc + 4) & 0xffff;
        if (!rb.lookup(pc, 1, 2))
            rb.update(pc, 1, 2, 3);
    }
}
BENCHMARK(BM_ReuseBuffer);

void
BM_RecordKernelLoop(benchmark::State &state)
{
    // The shape of an instrumented inner loop: loads, a multiply, an
    // accumulate, a store, loop overhead. Exercises Recorder's pc
    // synthesis, address remapping, and Trace::push back to back.
    const size_t n = static_cast<size_t>(state.range(0));
    std::vector<double> src(n, 1.5), dst(n, 0.0);
    for (auto _ : state) {
        Trace trace;
        trace.reserve(n * 6);
        Recorder rec(trace);
        for (size_t i = 0; i < n; i++) {
            double a = rec.load(src[i]);
            double p = rec.mul(a, 0.25);
            double s = rec.fadd(p, 1.0);
            rec.store(dst[i], s);
            rec.alu(1);
            rec.branch();
        }
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n) * 6);
}
BENCHMARK(BM_RecordKernelLoop)->Arg(1 << 10)->Arg(1 << 14);

void
BM_TraceIterate(benchmark::State &state)
{
    // Replay-side cost of the structure-of-arrays iteration shim.
    const size_t n = static_cast<size_t>(state.range(0));
    Trace trace;
    trace.reserve(n);
    std::vector<double> src(n, 2.0), dst(n, 0.0);
    Recorder rec(trace);
    for (size_t i = 0; i < n; i++)
        rec.mul(rec.load(src[i]), 3.0);
    for (auto _ : state) {
        uint64_t acc = 0;
        for (const Instruction &inst : trace)
            acc += inst.pc + inst.a;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_TraceIterate)->Arg(1 << 14);

} // anonymous namespace

BENCHMARK_MAIN();
