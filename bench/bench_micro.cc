/**
 * @file
 * Microbenchmarks (google-benchmark): software cost of the MEMO-TABLE
 * primitives themselves — lookup hit/miss paths, insertion, the
 * infinite table, and the Reuse Buffer, for users embedding the
 * library in their own simulators.
 */

#include <benchmark/benchmark.h>

#include "arith/fp.hh"
#include "core/memo_table.hh"
#include "core/reuse_buffer.hh"

using namespace memo;

namespace
{

void
BM_LookupHit(benchmark::State &state)
{
    MemoTable t(Operation::FpDiv, MemoConfig{});
    t.update(fpBits(10.0), fpBits(4.0), fpBits(2.5));
    for (auto _ : state) {
        auto v = t.lookup(fpBits(10.0), fpBits(4.0));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LookupHit);

void
BM_LookupMiss(benchmark::State &state)
{
    MemoTable t(Operation::FpDiv, MemoConfig{});
    double a = 1.0;
    for (auto _ : state) {
        a += 1.0; // fresh operands: guaranteed miss path
        auto v = t.lookup(fpBits(a), fpBits(4.0));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LookupMiss);

void
BM_UpdateInsert(benchmark::State &state)
{
    MemoTable t(Operation::FpDiv, MemoConfig{});
    double a = 1.0;
    for (auto _ : state) {
        a += 1.0;
        t.update(fpBits(a), fpBits(4.0), fpBits(a / 4.0));
    }
}
BENCHMARK(BM_UpdateInsert);

void
BM_AccessMixed(benchmark::State &state)
{
    // A realistic mix: a small alphabet so some accesses hit.
    MemoConfig cfg;
    cfg.entries = static_cast<unsigned>(state.range(0));
    MemoTable t(Operation::FpMul, cfg);
    uint64_t i = 0;
    for (auto _ : state) {
        double a = 1.0 + static_cast<double>(i % 64) / 64.0;
        double b = 1.0 + static_cast<double>((i / 64) % 8);
        i++;
        uint64_t r = t.access(fpBits(a), fpBits(b),
                              [&] { return fpBits(a * b); });
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_AccessMixed)->Arg(32)->Arg(1024);

void
BM_InfiniteTable(benchmark::State &state)
{
    MemoConfig cfg;
    cfg.infinite = true;
    MemoTable t(Operation::FpMul, cfg);
    uint64_t i = 0;
    for (auto _ : state) {
        double a = 1.0 + static_cast<double>(i % 4096) / 4096.0;
        i++;
        uint64_t r = t.access(fpBits(a), fpBits(3.0),
                              [&] { return fpBits(a * 3.0); });
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_InfiniteTable);

void
BM_TrivialDetection(benchmark::State &state)
{
    MemoTable t(Operation::FpMul, MemoConfig{});
    for (auto _ : state) {
        auto v = t.lookup(fpBits(1.0), fpBits(5.0));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_TrivialDetection);

void
BM_ReuseBuffer(benchmark::State &state)
{
    ReuseBuffer rb(1024, 4);
    uint64_t pc = 0;
    for (auto _ : state) {
        pc = (pc + 4) & 0xffff;
        if (!rb.lookup(pc, 1, 2))
            rb.update(pc, 1, 2, 3);
    }
}
BENCHMARK(BM_ReuseBuffer);

} // anonymous namespace

BENCHMARK_MAIN();
