/**
 * @file
 * Extension: the hardware cost of MEMO-TABLE capacity (section 2.4
 * made quantitative). For each size, the storage budget, estimated
 * lookup latency, and the *latency-aware* division SE — hit ratios
 * keep rising with capacity (Figure 3), but once the lookup itself
 * costs extra cycles the net gain peaks at a small table, supporting
 * the paper's choice of 32 entries.
 */

#include <iostream>

#include "common.hh"
#include "sim/amdahl.hh"
#include "sim/cost.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Capacity vs hardware cost vs latency-aware "
                       "benefit (fp div, 13-cycle divider)",
                       "paper section 2.4");

    // Hit ratios per size, pooled over the five sweep kernels.
    std::vector<unsigned> sizes = {8,   16,   32,   64,   128,
                                   256, 1024, 4096, 8192};
    std::vector<MemoConfig> cfgs;
    for (unsigned entries : sizes) {
        MemoConfig cfg;
        cfg.entries = entries;
        cfg.ways = 4;
        cfgs.push_back(cfg);
    }

    std::vector<double> hit(sizes.size(), 0.0);
    std::vector<int> n(sizes.size(), 0);
    for (const auto &name : sweepKernelNames()) {
        auto hits = measureMmKernelConfigs(mmKernelByName(name), cfgs,
                                           bench::benchCrop);
        for (size_t s = 0; s < sizes.size(); s++) {
            if (hits[s].fpDiv >= 0) {
                hit[s] += hits[s].fpDiv;
                n[s]++;
            }
        }
    }

    TextTable t({"entries", "bytes", "cmp bits", "lookup cyc",
                 "hit ratio", "SE (1-cyc hits)", "SE (latency-aware)"});
    constexpr unsigned dc = 13;
    for (size_t s = 0; s < sizes.size(); s++) {
        double hr = hit[s] / n[s];
        TableCost cost = tableCost(Operation::FpDiv, cfgs[s]);
        double se_ideal = speedupEnhanced(dc, hr);
        // Hits cost the lookup latency instead of one cycle.
        double se_real = dc / ((1.0 - hr) * dc +
                               hr * cost.lookupCycles);
        t.addRow({TextTable::count(sizes[s]),
                  TextTable::count(cost.bytes),
                  TextTable::count(cost.comparatorBits),
                  TextTable::count(cost.lookupCycles),
                  TextTable::ratio(hr), TextTable::fixed(se_ideal, 2),
                  TextTable::fixed(se_real, 2)});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: under the 1-cycle-hit assumption "
                 "SE keeps growing with\ncapacity, but once lookup "
                 "latency scales with array size the net SE peaks\n"
                 "at a small table — the quantitative form of the "
                 "paper's 32-entry choice\n(768 data bytes; the "
                 "Pentium's SRT lookup table alone is 1 KB).\n";
    return 0;
}
