/**
 * @file
 * Table 7: hit ratios of the Multi-Media (Khoros) applications over
 * the 14 standard inputs, 32/4 MEMO-TABLE vs infinite.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Multi-Media application hit ratios, 32/4 vs "
                       "infinite",
                       "Table 7");

    check::MmSuiteResult r = check::measureMmSuite();

    TextTable t({"application", "int mult", "fp mult", "fp div",
                 "int mult inf", "fp mult inf", "fp div inf",
                 "paper 32 (i/m/d)", "paper inf (i/m/d)"});

    for (const check::MmRow &row : r.rows) {
        const MmKernel &k = mmKernelByName(row.name);
        t.addRow({row.name, TextTable::ratio(row.h32.intMul),
                  TextTable::ratio(row.h32.fpMul),
                  TextTable::ratio(row.h32.fpDiv),
                  TextTable::ratio(row.hinf.intMul),
                  TextTable::ratio(row.hinf.fpMul),
                  TextTable::ratio(row.hinf.fpDiv),
                  TextTable::ratio(k.paper.intMul32) + "/" +
                      TextTable::ratio(k.paper.fpMul32) + "/" +
                      TextTable::ratio(k.paper.fpDiv32),
                  TextTable::ratio(k.paper.intMulInf) + "/" +
                      TextTable::ratio(k.paper.fpMulInf) + "/" +
                      TextTable::ratio(k.paper.fpDivInf)});
    }
    t.addRow({"average", TextTable::ratio(r.avg32.intMul),
              TextTable::ratio(r.avg32.fpMul),
              TextTable::ratio(r.avg32.fpDiv),
              TextTable::ratio(r.avgInf.intMul),
              TextTable::ratio(r.avgInf.fpMul),
              TextTable::ratio(r.avgInf.fpDiv), "", ""});
    t.print(std::cout);

    std::cout << "\nPaper averages (32): .59/.39/.47; (inf): "
                 ".95/.82/.85.\nShape to check: Multi-Media hit ratios "
                 "at 32 entries are several times the\nscientific "
                 "suites' (Tables 5/6) and scale close to the infinite "
                 "bound.\n";
    return 0;
}
