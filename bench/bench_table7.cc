/**
 * @file
 * Table 7: hit ratios of the Multi-Media (Khoros) applications over
 * the 14 standard inputs, 32/4 MEMO-TABLE vs infinite.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Multi-Media application hit ratios, 32/4 vs "
                       "infinite",
                       "Table 7");

    MemoConfig c32;
    MemoConfig cinf;
    cinf.infinite = true;

    TextTable t({"application", "int mult", "fp mult", "fp div",
                 "int mult inf", "fp mult inf", "fp div inf",
                 "paper 32 (i/m/d)", "paper inf (i/m/d)"});

    double s32[3] = {}, sinf[3] = {};
    int n32[3] = {}, ninf[3] = {};
    for (const auto &k : mmKernels()) {
        if (k.name == "vsqrt")
            continue; // not part of Table 7
        auto hits = measureMmKernelConfigs(k, {c32, cinf},
                                           bench::benchCrop);
        UnitHits h32 = hits[0];
        UnitHits hinf = hits[1];
        t.addRow({k.name, TextTable::ratio(h32.intMul),
                  TextTable::ratio(h32.fpMul),
                  TextTable::ratio(h32.fpDiv),
                  TextTable::ratio(hinf.intMul),
                  TextTable::ratio(hinf.fpMul),
                  TextTable::ratio(hinf.fpDiv),
                  TextTable::ratio(k.paper.intMul32) + "/" +
                      TextTable::ratio(k.paper.fpMul32) + "/" +
                      TextTable::ratio(k.paper.fpDiv32),
                  TextTable::ratio(k.paper.intMulInf) + "/" +
                      TextTable::ratio(k.paper.fpMulInf) + "/" +
                      TextTable::ratio(k.paper.fpDivInf)});
        double h32v[3] = {h32.intMul, h32.fpMul, h32.fpDiv};
        double hinfv[3] = {hinf.intMul, hinf.fpMul, hinf.fpDiv};
        for (int j = 0; j < 3; j++) {
            if (h32v[j] >= 0) {
                s32[j] += h32v[j];
                n32[j]++;
            }
            if (hinfv[j] >= 0) {
                sinf[j] += hinfv[j];
                ninf[j]++;
            }
        }
    }
    auto avg = [](double s, int n) { return n ? s / n : -1.0; };
    t.addRow({"average", TextTable::ratio(avg(s32[0], n32[0])),
              TextTable::ratio(avg(s32[1], n32[1])),
              TextTable::ratio(avg(s32[2], n32[2])),
              TextTable::ratio(avg(sinf[0], ninf[0])),
              TextTable::ratio(avg(sinf[1], ninf[1])),
              TextTable::ratio(avg(sinf[2], ninf[2])), "", ""});
    t.print(std::cout);

    std::cout << "\nPaper averages (32): .59/.39/.47; (inf): "
                 ".95/.82/.85.\nShape to check: Multi-Media hit ratios "
                 "at 32 entries are several times the\nscientific "
                 "suites' (Tables 5/6) and scale close to the infinite "
                 "bound.\n";
    return 0;
}
