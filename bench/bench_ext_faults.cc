/**
 * @file
 * Extension: soft-error vulnerability of the MEMO-TABLE array. Unlike
 * a cache, a memo table's payload is *architecturally invisible* — a
 * flipped bit silently changes a computed result. This bench injects
 * deterministic bit flips into the fp-div table while replaying a
 * workload and counts silently corrupted results without protection
 * vs detected-and-dropped hits with a per-entry parity bit (whose
 * cost is one bit in ~193, per sim/cost.hh).
 */

#include <iostream>

#include "common.hh"

using namespace memo;

namespace
{

struct FaultRun
{
    uint64_t hits = 0;
    uint64_t corrupted = 0;  //!< hits returning a wrong value
    uint64_t detected = 0;   //!< parity misses
    uint64_t flips = 0;
};

FaultRun
replayWithFaults(const Trace &trace, bool parity, unsigned flip_period)
{
    MemoConfig cfg;
    cfg.parityProtected = parity;
    MemoTable table(Operation::FpDiv, cfg);

    FaultRun run;
    uint64_t rng = 12345;
    uint64_t since_flip = 0;
    for (const auto &inst : trace) {
        if (inst.cls != InstClass::FpDiv)
            continue;
        if (++since_flip >= flip_period) {
            since_flip = 0;
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            unsigned set = static_cast<unsigned>(rng % cfg.sets());
            unsigned way = static_cast<unsigned>((rng >> 8) %
                                                 cfg.ways);
            unsigned bit = static_cast<unsigned>((rng >> 16) % 64);
            if (table.injectBitFlip(set, way, bit))
                run.flips++;
        }
        if (auto v = table.lookup(inst.a, inst.b)) {
            run.hits++;
            if (*v != inst.result)
                run.corrupted++;
        } else {
            table.update(inst.a, inst.b, inst.result);
        }
    }
    run.detected = table.stats().parityMisses;
    return run;
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Soft errors in the MEMO-TABLE array: silent "
                       "corruption vs parity protection",
                       "reliability extension; one flip per 200 "
                       "divisions");

    TextTable t({"application", "flips", "hits (unprot)",
                 "corrupted results", "hits (parity)", "detected",
                 "corrupted (parity)"});

    for (const auto &name : {"vcost", "vgauss", "vspatial", "vkmeans",
                             "vgpwl"}) {
        const MmKernel &k = mmKernelByName(name);
        Trace trace = traceMmKernel(k, imageByName("Muppet1").image,
                                    bench::benchCrop);
        FaultRun unprot = replayWithFaults(trace, false, 200);
        FaultRun prot = replayWithFaults(trace, true, 200);

        t.addRow({name, TextTable::count(unprot.flips),
                  TextTable::count(unprot.hits),
                  TextTable::count(unprot.corrupted),
                  TextTable::count(prot.hits),
                  TextTable::count(prot.detected),
                  TextTable::count(prot.corrupted)});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: without protection a fraction of "
                 "hits silently return\nwrong results (unlike a cache, "
                 "nothing downstream ever checks them); the\nparity "
                 "bit detects (nearly) all of them. The residue in "
                 "'corrupted (parity)'\nat high flip rates is the "
                 "classic parity blind spot — an even number of\n"
                 "flips landing in one entry — which is the argument "
                 "for SECDED once the\narray grows beyond the paper's "
                 "32 entries.\n";
    return 0;
}
