/**
 * @file
 * Table 6: hit ratios of the SPEC CFP95 benchmark analogues with a
 * 32-entry 4-way MEMO-TABLE vs an "infinitely" large one.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader(
        "SPEC CFP95 benchmark hit ratios, 32/4 vs infinite", "Table 6");
    bench::printSciSuite(specWorkloads());
    std::cout << "\nPaper averages (32): .58/.20/.17; (inf): "
                 ".99/.52/.59.\nShape to check: hydro2d is the outlier "
                 "with high fp hit ratios even at 32\nentries; the rest "
                 "only show reuse to the infinite table.\n";
    return 0;
}
