/**
 * @file
 * Figure 3: hit ratios of fp division and multiplication in the five
 * sample Multi-Media applications as a function of the MEMO-TABLE
 * size (8..8192 entries, 4-way associative), with min/avg/max.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

namespace
{

void
printUnit(const char *title, const std::vector<unsigned> &sizes,
          const std::vector<check::BandRow> &rows)
{
    std::cout << title << "\n";
    TextTable t({"entries", "avg", "min", "max"});
    for (size_t s = 0; s < sizes.size(); s++) {
        t.addRow({TextTable::count(sizes[s]),
                  TextTable::ratio(rows[s].avg),
                  TextTable::ratio(rows[s].lo),
                  TextTable::ratio(rows[s].hi)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Hit ratio vs MEMO-TABLE size (4-way; vcost, "
                       "venhance, vgpwl, vspatial, vsurf)",
                       "Figure 3");
    // Shared with the fig3 golden snapshot (src/check/golden.hh).
    std::vector<MemoConfig> cfgs;
    for (unsigned entries : check::fig3Sizes()) {
        MemoConfig cfg;
        cfg.entries = entries;
        cfg.ways = 4;
        cfgs.push_back(cfg);
    }
    check::SweepBands bands = check::measureSweepBands(cfgs);
    printUnit("fp division:", check::fig3Sizes(), bands.fpDiv);
    printUnit("fp multiplication:", check::fig3Sizes(), bands.fpMul);
    std::cout << "Shape to check: the curves rise steeply up to a few "
                 "hundred entries and\nflatten around 1024; division "
                 "saturates at smaller tables than\nmultiplication "
                 "(the paper: 8 entries may suffice for the divider, "
                 "32 for\nthe multiplier).\n";
    return 0;
}
