/**
 * @file
 * Figure 3: hit ratios of fp division and multiplication in the five
 * sample Multi-Media applications as a function of the MEMO-TABLE
 * size (8..8192 entries, 4-way associative), with min/avg/max.
 */

#include <algorithm>
#include <iostream>

#include "common.hh"
#include "exec/parallel.hh"

using namespace memo;

namespace
{

const std::vector<unsigned> sizes = {8u, 16u, 32u, 64u, 128u, 256u,
                                     512u, 1024u, 2048u, 4096u,
                                     8192u};

/** hits[kernel][size] for both units, traces generated once. */
std::vector<std::vector<UnitHits>>
sweepAll()
{
    std::vector<MemoConfig> cfgs;
    for (unsigned entries : sizes) {
        MemoConfig cfg;
        cfg.entries = entries;
        cfg.ways = 4;
        cfgs.push_back(cfg);
    }
    // Kernels fan out across the executor; the per-kernel config
    // sweep runs inline inside each worker.
    return exec::sweep(sweepKernelNames(), [&](const std::string &n) {
        return measureMmKernelConfigs(mmKernelByName(n), cfgs,
                                      bench::benchCrop);
    });
}

void
printUnit(const char *title,
          const std::vector<std::vector<UnitHits>> &all, bool div_unit)
{
    std::cout << title << "\n";
    TextTable t({"entries", "avg", "min", "max"});
    for (size_t s = 0; s < sizes.size(); s++) {
        double sum = 0.0, lo = 1.0, hi = 0.0;
        int n = 0;
        for (const auto &per_kernel : all) {
            double hr = div_unit ? per_kernel[s].fpDiv
                                 : per_kernel[s].fpMul;
            if (hr < 0)
                continue;
            sum += hr;
            lo = std::min(lo, hr);
            hi = std::max(hi, hr);
            n++;
        }
        t.addRow({TextTable::count(sizes[s]),
                  TextTable::ratio(sum / n), TextTable::ratio(lo),
                  TextTable::ratio(hi)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Hit ratio vs MEMO-TABLE size (4-way; vcost, "
                       "venhance, vgpwl, vspatial, vsurf)",
                       "Figure 3");
    auto all = sweepAll();
    printUnit("fp division:", all, true);
    printUnit("fp multiplication:", all, false);
    std::cout << "Shape to check: the curves rise steeply up to a few "
                 "hundred entries and\nflatten around 1024; division "
                 "saturates at smaller tables than\nmultiplication "
                 "(the paper: 8 entries may suffice for the divider, "
                 "32 for\nthe multiplier).\n";
    return 0;
}
