/**
 * @file
 * Extension: tiered MEMO-TABLEs. Compares, for the fp divider on a
 * 13-cycle unit, the latency-aware effective division cost of
 *   - a 32-entry table (1-cycle hits),
 *   - a 2048-entry table (2-cycle hits per the cost model),
 *   - a 32-entry L1 backed by a 2048-entry L2 (1- and 2-cycle hits).
 */

#include <iostream>

#include "common.hh"
#include "core/tiered_table.hh"
#include "exec/parallel.hh"
#include "sim/cost.hh"

using namespace memo;

namespace
{

struct Effective
{
    double hit1 = 0.0;   //!< 1-cycle hits (small / L1)
    double hit2 = 0.0;   //!< slower hits (big table / L2)
    double cost = 13.0;  //!< effective cycles per division
};

Effective
effectiveCost(double hit1, double hit2, unsigned lat2, unsigned dc)
{
    Effective e;
    e.hit1 = hit1;
    e.hit2 = hit2;
    e.cost = hit1 * 1.0 + hit2 * lat2 + (1.0 - hit1 - hit2) * dc;
    return e;
}

/** One application's measurements (any == false: no divisions). */
struct AppRow
{
    bool any = false;
    double smallHr = 0.0, bigHr = 0.0, l1Hr = 0.0, l2Hr = 0.0;
};

AppRow
measureApp(const MmKernel &k, const MemoConfig &small_cfg,
           const MemoConfig &big_cfg)
{
    MemoTable small_t(Operation::FpDiv, small_cfg);
    MemoTable big_t(Operation::FpDiv, big_cfg);
    TieredMemoTable tiered(Operation::FpDiv, small_cfg, big_cfg);

    AppRow row;
    for (const auto &ni : standardImages()) {
        auto trace = cachedMmKernelTrace(k, ni, bench::benchCrop);
        small_t.flush();
        big_t.flush();
        for (const auto &inst : *trace) {
            if (inst.cls != InstClass::FpDiv)
                continue;
            row.any = true;
            if (!small_t.lookup(inst.a, inst.b))
                small_t.update(inst.a, inst.b, inst.result);
            if (!big_t.lookup(inst.a, inst.b))
                big_t.update(inst.a, inst.b, inst.result);
            if (!tiered.lookup(inst.a, inst.b))
                tiered.update(inst.a, inst.b, inst.result);
        }
    }
    if (!row.any)
        return row;

    row.smallHr = small_t.stats().hitRatio();
    row.bigHr = big_t.stats().hitRatio();
    uint64_t lookups = tiered.l1Stats().lookups;
    row.l1Hr = lookups ? static_cast<double>(
                             tiered.l1Stats().allHits()) /
                             lookups
                       : 0.0;
    row.l2Hr = lookups ? static_cast<double>(tiered.l2Stats().hits) /
                             lookups
                       : 0.0;
    return row;
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Tiered MEMO-TABLEs: 32 vs 2048 vs 32+2048 "
                       "(fp div, 13-cycle divider)",
                       "extension built on sections 2.4 and Figure 3");

    constexpr unsigned dc = 13;
    MemoConfig small_cfg; // 32/4
    MemoConfig big_cfg;
    big_cfg.entries = 2048;
    big_cfg.ways = 4;
    unsigned big_lat = lookupLatency(big_cfg.entries);

    TextTable t({"application", "small hit", "big hit", "L1 hit",
                 "L2 hit", "eff small", "eff big", "eff tiered"});

    const auto &apps = bench::speedupApps();
    auto rows = exec::sweep(apps, [&](const std::string &name) {
        return measureApp(mmKernelByName(name), small_cfg, big_cfg);
    });

    double sum_small = 0, sum_big = 0, sum_tier = 0;
    int n = 0;
    for (size_t ai = 0; ai < apps.size(); ai++) {
        const AppRow &row = rows[ai];
        if (!row.any)
            continue;

        Effective es = effectiveCost(row.smallHr, 0.0, big_lat, dc);
        Effective eb = effectiveCost(0.0, row.bigHr, big_lat, dc);
        Effective et = effectiveCost(row.l1Hr, row.l2Hr, big_lat, dc);

        t.addRow({apps[ai], TextTable::ratio(row.smallHr),
                  TextTable::ratio(row.bigHr),
                  TextTable::ratio(row.l1Hr),
                  TextTable::ratio(row.l2Hr),
                  TextTable::fixed(es.cost, 1),
                  TextTable::fixed(eb.cost, 1),
                  TextTable::fixed(et.cost, 1)});
        sum_small += es.cost;
        sum_big += eb.cost;
        sum_tier += et.cost;
        n++;
    }
    t.addRow({"average", "", "", "", "",
              TextTable::fixed(sum_small / n, 1),
              TextTable::fixed(sum_big / n, 1),
              TextTable::fixed(sum_tier / n, 1)});
    t.print(std::cout);

    std::cout << "\nShape to check: promotion keeps the hot pairs in "
                 "the 1-cycle level, so the\ntiered design matches the "
                 "big table's coverage at close to the small\ntable's "
                 "latency — the lowest effective division cost of the "
                 "three.\n";
    return 0;
}
