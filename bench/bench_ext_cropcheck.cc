/**
 * @file
 * Methodology validation: the hit-ratio benches centre-crop inputs to
 * 96x96 (DESIGN.md section 5). This bench shows the measured hit
 * ratios are stable across crop sizes — i.e. the crop substitution
 * does not drive the results.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Crop-size sensitivity of the 32/4 hit ratios",
                       "methodology check for DESIGN.md section 5");

    MemoConfig cfg;
    TextTable t({"application", "fd@48", "fd@96", "fd@160", "fm@48",
                 "fm@96", "fm@160"});

    for (const auto &name : sweepKernelNames()) {
        const MmKernel &k = mmKernelByName(name);
        double fd[3], fm[3];
        int i = 0;
        for (int crop : {48, 96, 160}) {
            UnitHits h = measureMmKernel(k, cfg, crop);
            fd[i] = h.fpDiv;
            fm[i] = h.fpMul;
            i++;
        }
        t.addRow({name, TextTable::ratio(fd[0]),
                  TextTable::ratio(fd[1]), TextTable::ratio(fd[2]),
                  TextTable::ratio(fm[0]), TextTable::ratio(fm[1]),
                  TextTable::ratio(fm[2])});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: each application's ratios move by "
                 "at most a few points\nacross a 3.3x change in crop "
                 "area — local value statistics, not frame size,\n"
                 "drive MEMO-TABLE behaviour, as the paper's windowed-"
                 "entropy analysis implies.\n";
    return 0;
}
