/**
 * @file
 * Table 5: hit ratios of the Perfect Club benchmark analogues with a
 * 32-entry 4-way MEMO-TABLE vs an "infinitely" large fully associative
 * one. Paper reference values are printed alongside.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Perfect benchmark hit ratios, 32/4 vs infinite",
                       "Table 5");
    bench::printSciSuite(perfectWorkloads());
    std::cout << "\nPaper averages (32): .57/.11/.16; (inf): "
                 ".70/.31/.45.\nShape to check: int-mult reuse is high "
                 "in the regular codes, fp reuse at 32\nentries is "
                 "poor, and the infinite table exposes far more reuse "
                 "potential.\n";
    return 0;
}
