/**
 * @file
 * Extension (paper section 2.3, second proposal): replacing a second
 * fp divider with a MEMO-TABLE issue port. Compares the completion
 * time of each application's instruction stream on one divider, two
 * dividers, and one divider + table (13-cycle dividers; a 32-entry
 * 4-way table costs a fraction of an SRT divider's area).
 */

#include <iostream>

#include "common.hh"
#include "sim/div_issue.hh"

using namespace memo;

int
main()
{
    bench::printHeader("One divider vs two dividers vs divider + "
                       "MEMO-TABLE issue port",
                       "paper section 2.3");

    constexpr unsigned div_latency = 13;
    TextTable t({"application", "1 divider", "2 dividers",
                 "1 div + table", "table hits", "vs 1-div",
                 "of 2-div gain"});

    for (const auto &name : bench::speedupApps()) {
        const MmKernel &k = mmKernelByName(name);
        uint64_t one = 0, two = 0, tbl = 0, hits = 0, divs = 0;
        for (const auto &ni : standardImages()) {
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            one += runDivIssue(trace, DivEngine::OneDivider,
                               div_latency)
                       .totalCycles;
            two += runDivIssue(trace, DivEngine::TwoDividers,
                               div_latency)
                       .totalCycles;
            auto r = runDivIssue(trace, DivEngine::DividerPlusTable,
                                 div_latency);
            tbl += r.totalCycles;
            hits += r.tableHits;
            divs += r.divCount;
        }
        if (divs == 0)
            continue;
        double speedup = static_cast<double>(one) / tbl;
        double two_gain = static_cast<double>(one) / two - 1.0;
        double tbl_gain = speedup - 1.0;
        double captured = two_gain > 1e-9 ? tbl_gain / two_gain : 1.0;
        t.addRow({name, TextTable::count(one), TextTable::count(two),
                  TextTable::count(tbl),
                  TextTable::ratio(static_cast<double>(hits) / divs),
                  TextTable::fixed(speedup, 3),
                  TextTable::fixed(captured, 2)});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: the table-as-second-unit "
                 "configuration recovers a large\nfraction of the "
                 "second divider's benefit ('of 2-div gain') whenever "
                 "the hit\nratio is substantial — at a fraction of an "
                 "SRT divider's area (section 2.4:\na 32-entry table "
                 "is 768 bytes; the Pentium's SRT lookup table alone "
                 "is 1 KB).\n";
    return 0;
}
