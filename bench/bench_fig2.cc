/**
 * @file
 * Figure 2: hit ratios of fp division and multiplication as a function
 * of image entropy (whole image and 8x8 windows), with the
 * Marquardt-Levenberg best-fit line. The paper reports roughly a 5%
 * drop in hit ratio per entropy bit.
 */

#include <cmath>
#include <iostream>

#include "analysis/lmfit.hh"
#include "common.hh"
#include "img/entropy.hh"
#include "img/generate.hh"

using namespace memo;

namespace
{

/** Pooled per-image hit ratio of one unit across all kernels. */
void
perImageHits(std::vector<std::string> &names, std::vector<double> &e_full,
             std::vector<double> &e_win, std::vector<double> &mul_hr,
             std::vector<double> &div_hr)
{
    MemoConfig cfg;
    for (const auto &ni : standardImages()) {
        double ef = imageEntropy(ni.image);
        double e8 = windowEntropy(ni.image, 8);
        if (std::isnan(ef))
            continue; // FLOAT inputs carry no entropy (Table 8 "-")

        MemoBank bank = MemoBank::standard(cfg);
        for (const auto &k : mmKernels()) {
            if (k.name == "vsqrt")
                continue;
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            bank.table(Operation::FpMul)->flush();
            bank.table(Operation::FpDiv)->flush();
            replayMemo(trace, bank);
        }
        names.push_back(ni.name);
        e_full.push_back(ef);
        e_win.push_back(e8);
        mul_hr.push_back(bank.table(Operation::FpMul)->stats()
                             .hitRatio());
        div_hr.push_back(bank.table(Operation::FpDiv)->stats()
                             .hitRatio());
    }
}

void
printSeries(const std::string &title, const std::vector<double> &xs,
            const std::vector<double> &ys,
            const std::vector<std::string> &names)
{
    std::cout << title << "\n";
    TextTable t({"image", "entropy", "hit ratio"});
    for (size_t i = 0; i < xs.size(); i++)
        t.addRow({names[i], TextTable::fixed(xs[i], 2),
                  TextTable::ratio(ys[i])});
    t.print(std::cout);

    FitResult fit = fitLine(xs, ys);
    std::cout << "  Marquardt-Levenberg best fit: hit = "
              << TextTable::fixed(fit.params[0], 3) << " "
              << (fit.params[1] < 0 ? "- " : "+ ")
              << TextTable::fixed(std::fabs(fit.params[1]), 3)
              << " * entropy   (slope "
              << TextTable::fixed(100.0 * fit.params[1], 1)
              << "% per bit)\n\n";
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Hit ratio vs entropy with ML best-fit lines",
                       "Figure 2");

    std::vector<std::string> names;
    std::vector<double> e_full, e_win, mul_hr, div_hr;
    perImageHits(names, e_full, e_win, mul_hr, div_hr);

    printSeries("fp division vs whole-image entropy:", e_full, div_hr,
                names);
    printSeries("fp division vs 8x8 window entropy:", e_win, div_hr,
                names);
    printSeries("fp multiplication vs whole-image entropy:", e_full,
                mul_hr, names);
    printSeries("fp multiplication vs 8x8 window entropy:", e_win,
                mul_hr, names);

    std::cout << "Shape to check: all four slopes are negative, around "
                 "-5% of hit ratio per\nentropy bit (the paper's "
                 "observation).\n";
    return 0;
}
