/**
 * @file
 * Figure 2: hit ratios of fp division and multiplication as a function
 * of image entropy (whole image and 8x8 windows), with the
 * Marquardt-Levenberg best-fit line. The paper reports roughly a 5%
 * drop in hit ratio per entropy bit.
 */

#include <cmath>
#include <iostream>

#include "common.hh"

using namespace memo;

namespace
{

void
printSeries(const std::string &title,
            const std::vector<check::EntropyPoint> &points, bool win,
            bool mul, const FitResult &fit)
{
    std::cout << title << "\n";
    TextTable t({"image", "entropy", "hit ratio"});
    for (const check::EntropyPoint &p : points)
        t.addRow({p.image,
                  TextTable::fixed(win ? p.entropyWin : p.entropyFull,
                                   2),
                  TextTable::ratio(mul ? p.fpMulHit : p.fpDivHit)});
    t.print(std::cout);

    std::cout << "  Marquardt-Levenberg best fit: hit = "
              << TextTable::fixed(fit.params[0], 3) << " "
              << (fit.params[1] < 0 ? "- " : "+ ")
              << TextTable::fixed(std::fabs(fit.params[1]), 3)
              << " * entropy   (slope "
              << TextTable::fixed(100.0 * fit.params[1], 1)
              << "% per bit)\n\n";
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Hit ratio vs entropy with ML best-fit lines",
                       "Figure 2");

    check::EntropyResult r = check::measureEntropy();

    printSeries("fp division vs whole-image entropy:", r.points, false,
                false, r.divFull);
    printSeries("fp division vs 8x8 window entropy:", r.points, true,
                false, r.divWin);
    printSeries("fp multiplication vs whole-image entropy:", r.points,
                false, true, r.mulFull);
    printSeries("fp multiplication vs 8x8 window entropy:", r.points,
                true, true, r.mulWin);

    std::cout << "Shape to check: all four slopes are negative, around "
                 "-5% of hit ratio per\nentropy bit (the paper's "
                 "observation).\n";
    return 0;
}
