/**
 * @file
 * Extension: reuse-distance analysis of the operand streams. The
 * stack-distance histogram *predicts* the fully associative LRU hit
 * ratio at every size analytically; this bench validates the
 * prediction against simulation and reports the table size each
 * workload needs to reach a 50% division hit ratio — the analytic
 * explanation of Figure 3 and of the MM-vs-scientific split.
 */

#include <iostream>

#include "analysis/reuse.hh"
#include "common.hh"

using namespace memo;

namespace
{

/** Simulated fully associative LRU hit ratio at @p entries. */
double
simulatedFaHitRatio(const Trace &trace, Operation op, unsigned entries)
{
    MemoConfig cfg;
    cfg.entries = entries;
    cfg.ways = entries; // fully associative
    MemoTable table(op, cfg);
    for (const auto &inst : trace) {
        if (memoOperation(inst.cls) != op)
            continue;
        if (!table.lookup(inst.a, inst.b))
            table.update(inst.a, inst.b, inst.result);
    }
    return table.stats().lookups ? table.stats().hitRatio() : -1.0;
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Reuse-distance analysis of fp-div operand "
                       "streams",
                       "analytic companion to Figure 3 / Tables 5-7");

    TextTable t({"workload", "pred@8", "sim@8", "pred@32", "sim@32",
                 "pred@1024", "sim@1024", "entries for 50%"});

    auto addRow = [&t](const std::string &name, const Trace &trace) {
        ReuseProfile prof = reuseProfile(trace, Operation::FpDiv);
        if (prof.accesses() == 0)
            return;
        unsigned need = prof.entriesForHitRatio(0.5);
        t.addRow({name,
                  TextTable::ratio(prof.predictedHitRatio(8)),
                  TextTable::ratio(
                      simulatedFaHitRatio(trace, Operation::FpDiv, 8)),
                  TextTable::ratio(prof.predictedHitRatio(32)),
                  TextTable::ratio(simulatedFaHitRatio(
                      trace, Operation::FpDiv, 32)),
                  TextTable::ratio(prof.predictedHitRatio(1024)),
                  TextTable::ratio(simulatedFaHitRatio(
                      trace, Operation::FpDiv, 1024)),
                  need ? TextTable::count(need) : "> 8192"});
    };

    // A representative slice: three MM kernels on one input, and
    // three scientific analogues.
    for (const auto &name : {"vcost", "vspatial", "vkmeans"}) {
        Trace trace = traceMmKernel(mmKernelByName(name),
                                    imageByName("Muppet1").image,
                                    bench::benchCrop);
        addRow(std::string(name) + " (Muppet1)", trace);
    }
    for (const auto &name : {"OCEAN", "TRFD", "swim"}) {
        Trace trace = traceSciWorkload(sciWorkloadByName(name));
        addRow(name, trace);
    }
    t.print(std::cout);

    std::cout << "\nShape to check: predicted and simulated fully-"
                 "associative ratios agree\nexactly (they are the same "
                 "quantity); MM streams reach 50% within tens of\n"
                 "entries while OCEAN/swim need thousands — the "
                 "analytic root of the paper's\nMulti-Media-vs-"
                 "scientific split.\n";
    return 0;
}
