/**
 * @file
 * Extension ablation: replacement policy (LRU / FIFO / random) of the
 * 32/4 MEMO-TABLE on the five sweep kernels.
 */

#include <iostream>

#include "common.hh"
#include "exec/parallel.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Replacement-policy ablation (32/4 tables)",
                       "design-choice ablation");

    TextTable t({"application", "fd LRU", "fd FIFO", "fd rand",
                 "fm LRU", "fm FIFO", "fm rand"});

    const auto &names = sweepKernelNames();
    auto all = exec::sweep(names, [](const std::string &name) {
        std::vector<MemoConfig> cfgs(3);
        cfgs[0].replacement = Replacement::Lru;
        cfgs[1].replacement = Replacement::Fifo;
        cfgs[2].replacement = Replacement::Random;
        return measureMmKernelConfigs(mmKernelByName(name), cfgs,
                                      bench::benchCrop);
    });

    for (size_t ki = 0; ki < names.size(); ki++) {
        const auto &hits = all[ki];
        double fd[3], fm[3];
        for (int i = 0; i < 3; i++) {
            fd[i] = hits[i].fpDiv;
            fm[i] = hits[i].fpMul;
        }
        t.addRow({names[ki], TextTable::ratio(fd[0]),
                  TextTable::ratio(fd[1]), TextTable::ratio(fd[2]),
                  TextTable::ratio(fm[0]), TextTable::ratio(fm[1]),
                  TextTable::ratio(fm[2])});
    }
    t.print(std::cout);

    std::cout << "\nShape to check: LRU leads, FIFO is close, random "
                 "trails slightly — the gap\nis small because the "
                 "working sets either fit or badly overflow 32 "
                 "entries.\n";
    return 0;
}
