/**
 * @file
 * Executor scaling harness: runs the Figure 3 table-geometry sweep
 * (5 kernels x 11 table sizes) serially and in parallel, verifies the
 * two runs produce bit-identical hit ratios, and emits machine-
 * readable wall-clock timings (BENCH_sweep.json, under the shared
 * schema of prof/bench_record.hh) so the perf trajectory of the
 * reproduction suite is tracked across PRs — and can be gated with
 * `memo-bench --check` against any BENCH_*.json history.
 *
 * Usage: bench_sweep_scaling [output.json] [jobs]
 *   output.json  defaults to BENCH_sweep.json in the CWD
 *   jobs         parallel worker count (default 8, capped by the pool)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "common.hh"
#include "exec/parallel.hh"
#include "exec/trace_cache.hh"
#include "prof/prof.hh"

using namespace memo;

namespace
{

double
secondsSince(uint64_t t0_ns)
{
    return static_cast<double>(prof::nowNs() - t0_ns) / 1e9;
}

/** The Figure 3 sweep geometry: 4-way tables, 8..8192 entries. */
std::vector<MemoConfig>
sweepConfigs()
{
    std::vector<MemoConfig> cfgs;
    for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u, 512u,
                             1024u, 2048u, 4096u, 8192u}) {
        MemoConfig cfg;
        cfg.entries = entries;
        cfg.ways = 4;
        cfgs.push_back(cfg);
    }
    return cfgs;
}

/** Per-unit stat shard of one (kernel, config, image) replay. */
struct SweepShard
{
    MemoStats intMul, fpMul, fpDiv;
};

double
pooledRatio(const MemoStats &s)
{
    return s.lookups ? s.hitRatio() : -1.0;
}

/**
 * Replay the whole sweep as one flat (kernel, config, image) job
 * list: with 5 kernels x 11 configs x images the executor sees a few
 * hundred fine-grained items (grain 2 batches neighbours to amortize
 * dispatch), so even the tail of the sweep keeps every worker busy.
 * Each item replays one shared immutable trace into its own fresh
 * bank — equivalent to the old per-(kernel, config) loop that flushed
 * between images — and the per-unit stat deltas are folded in image
 * order below, so the pooled ratios are bit-identical for any job
 * count and any grain.
 */
std::vector<UnitHits>
runSweep(const std::vector<std::string> &kernels,
         const std::vector<MemoConfig> &cfgs, unsigned jobs)
{
    const auto &images = standardImages();
    const size_t n_img = images.size();
    const size_t n_cfg = cfgs.size();

    auto shards = exec::sweep(
        kernels.size() * n_cfg * n_img,
        [&](size_t i) {
            const MmKernel &k =
                mmKernelByName(kernels[i / (n_cfg * n_img)]);
            const MemoConfig &cfg = cfgs[(i / n_img) % n_cfg];
            auto trace = cachedMmKernelTrace(k, images[i % n_img],
                                             bench::benchCrop);
            MemoBank bank = MemoBank::standard(cfg);
            replayMemo(*trace, bank);
            SweepShard s;
            s.intMul = bank.table(Operation::IntMul)->stats();
            s.fpMul = bank.table(Operation::FpMul)->stats();
            s.fpDiv = bank.table(Operation::FpDiv)->stats();
            return s;
        },
        jobs, /*grain=*/2);

    std::vector<UnitHits> out(kernels.size() * n_cfg);
    for (size_t p = 0; p < out.size(); p++) {
        SweepShard pool;
        for (size_t ii = 0; ii < n_img; ii++) {
            const SweepShard &s = shards[p * n_img + ii];
            pool.intMul.merge(s.intMul);
            pool.fpMul.merge(s.fpMul);
            pool.fpDiv.merge(s.fpDiv);
        }
        out[p].intMul = pooledRatio(pool.intMul);
        out[p].fpMul = pooledRatio(pool.fpMul);
        out[p].fpDiv = pooledRatio(pool.fpDiv);
    }
    return out;
}

bool
identical(const std::vector<UnitHits> &a, const std::vector<UnitHits> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (a[i].intMul != b[i].intMul || a[i].fpMul != b[i].fpMul ||
            a[i].fpDiv != b[i].fpDiv)
            return false;
    }
    return true;
}

/** One single-sample record of the "sweep" suite. */
prof::BenchRecord
phaseRecord(const std::string &scenario, unsigned jobs, double sec)
{
    prof::BenchRecord r = bench::makeBenchRecord(scenario, "sweep", jobs);
    r.reps = 1;
    r.samplesSec = {sec};
    prof::summarizeSamples(r);
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";
    unsigned jobs = argc > 2
                        ? static_cast<unsigned>(std::atoi(argv[2]))
                        : 8u;
    if (jobs == 0)
        jobs = exec::ThreadPool::defaultJobs();

    bench::printHeader(
        "Executor scaling: Figure 3 sweep, serial vs parallel",
        "exec subsystem performance tracking");

    const auto &kernels = sweepKernelNames();
    auto cfgs = sweepConfigs();

    // Warm the trace cache first so both timed runs measure pure
    // sweep execution, not trace generation; generation itself fans
    // out across (kernel, image) pairs.
    uint64_t t0 = prof::nowNs();
    exec::parallelFor(
        kernels.size() * standardImages().size(),
        [&](size_t i) {
            const MmKernel &k =
                mmKernelByName(kernels[i / standardImages().size()]);
            const NamedImage &ni =
                standardImages()[i % standardImages().size()];
            cachedMmKernelTrace(k, ni, bench::benchCrop);
        },
        jobs);
    double gen_s = secondsSince(t0);

    t0 = prof::nowNs();
    auto serial = runSweep(kernels, cfgs, 1);
    double serial_s = secondsSince(t0);

    t0 = prof::nowNs();
    auto parallel = runSweep(kernels, cfgs, jobs);
    double parallel_s = secondsSince(t0);

    bool det = identical(serial, parallel);
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
    double sweep_points =
        static_cast<double>(kernels.size() * cfgs.size());

    TextTable t({"metric", "value"});
    t.addRow({"sweep points",
              TextTable::count(kernels.size() * cfgs.size())});
    t.addRow({"trace generation (s)", TextTable::fixed(gen_s, 2)});
    t.addRow({"serial sweep (s)", TextTable::fixed(serial_s, 2)});
    t.addRow({"parallel sweep (s)", TextTable::fixed(parallel_s, 2)});
    t.addRow({"jobs", TextTable::count(jobs)});
    t.addRow({"hardware threads",
              TextTable::count(std::thread::hardware_concurrency())});
    t.addRow({"speedup", TextTable::fixed(speedup, 2)});
    t.addRow({"deterministic", det ? "yes" : "NO (BUG)"});
    t.print(std::cout);

    prof::BenchRecord gen = phaseRecord("sweep_trace_gen", jobs, gen_s);
    gen.extra["sweepPoints"] = sweep_points;

    prof::BenchRecord ser = phaseRecord("sweep_serial", 1, serial_s);
    ser.extra["sweepPoints"] = sweep_points;
    ser.extra["deterministic"] = det ? 1.0 : 0.0;

    prof::BenchRecord par = phaseRecord("sweep_parallel", jobs,
                                        parallel_s);
    par.extra["sweepPoints"] = sweep_points;
    par.extra["speedup"] = speedup;
    par.extra["deterministic"] = det ? 1.0 : 0.0;

    bench::writeBenchRecords(out_path, {gen, ser, par});

    return det ? 0 : 1;
}
