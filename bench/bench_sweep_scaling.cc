/**
 * @file
 * Executor scaling harness: runs the Figure 3 table-geometry sweep
 * (5 kernels x 11 table sizes) serially and in parallel, verifies the
 * two runs produce bit-identical hit ratios, and emits machine-
 * readable wall-clock timings (BENCH_sweep.json) so the perf
 * trajectory of the reproduction suite is tracked across PRs.
 *
 * Usage: bench_sweep_scaling [output.json] [jobs]
 *   output.json  defaults to BENCH_sweep.json in the CWD
 *   jobs         parallel worker count (default 8, capped by the pool)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "common.hh"
#include "exec/parallel.hh"
#include "exec/trace_cache.hh"

using namespace memo;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** The Figure 3 sweep geometry: 4-way tables, 8..8192 entries. */
std::vector<MemoConfig>
sweepConfigs()
{
    std::vector<MemoConfig> cfgs;
    for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u, 512u,
                             1024u, 2048u, 4096u, 8192u}) {
        MemoConfig cfg;
        cfg.entries = entries;
        cfg.ways = 4;
        cfgs.push_back(cfg);
    }
    return cfgs;
}

/**
 * Replay the whole sweep as one flat (kernel, config) job list, so
 * the executor sees 55 independent work items. Traces come from the
 * warmed TraceCache; each job owns its MemoBank.
 */
std::vector<UnitHits>
runSweep(const std::vector<std::string> &kernels,
         const std::vector<MemoConfig> &cfgs, unsigned jobs)
{
    size_t n = kernels.size() * cfgs.size();
    return exec::sweep(
        n,
        [&](size_t i) {
            const MmKernel &k = mmKernelByName(kernels[i / cfgs.size()]);
            const MemoConfig &cfg = cfgs[i % cfgs.size()];
            MemoBank bank = MemoBank::standard(cfg);
            for (const auto &ni : standardImages()) {
                auto trace =
                    cachedMmKernelTrace(k, ni, bench::benchCrop);
                bank.table(Operation::IntMul)->flush();
                bank.table(Operation::FpMul)->flush();
                bank.table(Operation::FpDiv)->flush();
                replayMemo(*trace, bank);
            }
            return hitsOf(bank);
        },
        jobs);
}

bool
identical(const std::vector<UnitHits> &a, const std::vector<UnitHits> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (a[i].intMul != b[i].intMul || a[i].fpMul != b[i].fpMul ||
            a[i].fpDiv != b[i].fpDiv)
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";
    unsigned jobs = argc > 2
                        ? static_cast<unsigned>(std::atoi(argv[2]))
                        : 8u;
    if (jobs == 0)
        jobs = exec::ThreadPool::defaultJobs();

    bench::printHeader(
        "Executor scaling: Figure 3 sweep, serial vs parallel",
        "exec subsystem performance tracking");

    const auto &kernels = sweepKernelNames();
    auto cfgs = sweepConfigs();

    // Warm the trace cache first so both timed runs measure pure
    // sweep execution, not trace generation; generation itself fans
    // out across (kernel, image) pairs.
    auto t0 = Clock::now();
    exec::parallelFor(
        kernels.size() * standardImages().size(),
        [&](size_t i) {
            const MmKernel &k =
                mmKernelByName(kernels[i / standardImages().size()]);
            const NamedImage &ni =
                standardImages()[i % standardImages().size()];
            cachedMmKernelTrace(k, ni, bench::benchCrop);
        },
        jobs);
    auto t1 = Clock::now();
    double gen_s = seconds(t0, t1);

    t0 = Clock::now();
    auto serial = runSweep(kernels, cfgs, 1);
    t1 = Clock::now();
    double serial_s = seconds(t0, t1);

    t0 = Clock::now();
    auto parallel = runSweep(kernels, cfgs, jobs);
    t1 = Clock::now();
    double parallel_s = seconds(t0, t1);

    bool det = identical(serial, parallel);
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;

    TextTable t({"metric", "value"});
    t.addRow({"sweep points",
              TextTable::count(kernels.size() * cfgs.size())});
    t.addRow({"trace generation (s)", TextTable::fixed(gen_s, 2)});
    t.addRow({"serial sweep (s)", TextTable::fixed(serial_s, 2)});
    t.addRow({"parallel sweep (s)", TextTable::fixed(parallel_s, 2)});
    t.addRow({"jobs", TextTable::count(jobs)});
    t.addRow({"hardware threads",
              TextTable::count(std::thread::hardware_concurrency())});
    t.addRow({"speedup", TextTable::fixed(speedup, 2)});
    t.addRow({"deterministic", det ? "yes" : "NO (BUG)"});
    t.print(std::cout);

    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"fig3_sweep\",\n"
        << "  \"sweep_points\": " << kernels.size() * cfgs.size()
        << ",\n"
        << "  \"trace_gen_seconds\": " << gen_s << ",\n"
        << "  \"serial_seconds\": " << serial_s << ",\n"
        << "  \"parallel_seconds\": " << parallel_s << ",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"hardware_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"deterministic\": " << (det ? "true" : "false") << ",\n"
        << "  \"trace_cache_resident_mb\": "
        << exec::TraceCache::instance().residentBytes() / (1024 * 1024)
        << "\n}\n";
    std::cout << "\nwrote " << out_path << "\n";

    return det ? 0 : 1;
}
