/**
 * @file
 * Table 13: speedup when both fp multiplication and division are
 * memoized, on a fast FPU (3/13 cycles) and a slow one (5/39 cycles).
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Speedup with fp mult AND div memoized "
                       "(3/13 and 5/39 cycle FPUs)",
                       "Table 13");

    bench::printSpeedups(
        check::measureSpeedups(check::SpeedupUnit::Both), "fast",
        "slow");

    std::cout << "\nPaper averages: speedup 1.08 (fast FPU) and 1.22 "
                 "(slow FPU).\nShape to check: combined memoing beats "
                 "either unit alone, and the slower\nFPU benefits "
                 "more.\n";
    return 0;
}
