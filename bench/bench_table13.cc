/**
 * @file
 * Table 13: speedup when both fp multiplication and division are
 * memoized, on a fast FPU (3/13 cycles) and a slow one (5/39 cycles).
 */

#include <iostream>

#include "common.hh"
#include "sim/amdahl.hh"

using namespace memo;

namespace
{

struct Combined
{
    double fe, se, speedup, measured;
};

Combined
combine(const memo::bench::AppCycles &c, unsigned mul_lat,
        unsigned div_lat)
{
    double hit_m = c.hitRatioFpMul < 0 ? 0.0 : c.hitRatioFpMul;
    double hit_d = c.hitRatioFpDiv < 0 ? 0.0 : c.hitRatioFpDiv;
    std::vector<EnhancedUnit> units = {
        {static_cast<double>(c.fpMulCycles) / c.totalCycles,
         speedupEnhanced(mul_lat, hit_m)},
        {static_cast<double>(c.fpDivCycles) / c.totalCycles,
         speedupEnhanced(div_lat, hit_d)},
    };
    Combined out;
    out.fe = units[0].fe + units[1].fe;
    out.se = combinedSe(units);
    out.speedup = amdahlSpeedupMulti(units);
    out.measured = static_cast<double>(c.totalCycles) /
                   c.memoTotalCycles;
    return out;
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Speedup with fp mult AND div memoized "
                       "(3/13 and 5/39 cycle FPUs)",
                       "Table 13");

    TextTable t({"app", "FE fast", "SE fast", "speedup fast",
                 "meas fast", "FE slow", "SE slow", "speedup slow",
                 "meas slow"});

    double sum_fast = 0.0, sum_slow = 0.0;
    for (const auto &name : bench::speedupApps()) {
        const MmKernel &k = mmKernelByName(name);
        auto fast = bench::measureAppCycles(
            k, LatencyConfig::custom(3, 13), true, true);
        auto slow = bench::measureAppCycles(
            k, LatencyConfig::custom(5, 39), true, true);

        Combined cf = combine(fast, 3, 13);
        Combined cs = combine(slow, 5, 39);
        t.addRow({name, TextTable::fixed(cf.fe, 3),
                  TextTable::fixed(cf.se, 2),
                  TextTable::fixed(cf.speedup, 2),
                  TextTable::fixed(cf.measured, 2),
                  TextTable::fixed(cs.fe, 3),
                  TextTable::fixed(cs.se, 2),
                  TextTable::fixed(cs.speedup, 2),
                  TextTable::fixed(cs.measured, 2)});
        sum_fast += cf.speedup;
        sum_slow += cs.speedup;
    }
    size_t n = bench::speedupApps().size();
    t.addRow({"average", "", "", TextTable::fixed(sum_fast / n, 2), "",
              "", "", TextTable::fixed(sum_slow / n, 2), ""});
    t.print(std::cout);

    std::cout << "\nPaper averages: speedup 1.08 (fast FPU) and 1.22 "
                 "(slow FPU).\nShape to check: combined memoing beats "
                 "either unit alone, and the slower\nFPU benefits "
                 "more.\n";
    return 0;
}
