/**
 * @file
 * Table 10: storing only the mantissas vs the whole floating point
 * value — suite-average fp mult / fp div hit ratios for the Perfect
 * and Multi-Media suites (32-entry, 4-way tables).
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Mantissa-only vs full-value tags (32/4 suite "
                       "averages)",
                       "Table 10");

    // Shared with the table10 golden snapshot (src/check/golden.hh).
    check::TagModeResult r = check::measureTagModes();

    TextTable t({"suite", "fp mult full", "fp mult mant",
                 "fp div full", "fp div mant", "paper (mf/mm/df/dm)"});
    t.addRow({"Perfect", TextTable::ratio(r.perfectFull.fpMul),
              TextTable::ratio(r.perfectMant.fpMul),
              TextTable::ratio(r.perfectFull.fpDiv),
              TextTable::ratio(r.perfectMant.fpDiv),
              ".11/.11/.16/.17"});
    t.addRow({"Multi-Media", TextTable::ratio(r.mmFull.fpMul),
              TextTable::ratio(r.mmMant.fpMul),
              TextTable::ratio(r.mmFull.fpDiv),
              TextTable::ratio(r.mmMant.fpDiv), ".39/.43/.47/.50"});
    t.print(std::cout);

    std::cout << "\nShape to check: mantissa-only tags raise hit "
                 "ratios slightly (a few points),\nat the cost of "
                 "exponent-reconstruction hardware in the table.\n";
    return 0;
}
