/**
 * @file
 * Table 10: storing only the mantissas vs the whole floating point
 * value — suite-average fp mult / fp div hit ratios for the Perfect
 * and Multi-Media suites (32-entry, 4-way tables).
 */

#include <iostream>

#include "common.hh"
#include "exec/parallel.hh"

using namespace memo;

namespace
{

struct SuiteAvg
{
    double fpMul = 0.0;
    double fpDiv = 0.0;
};

void
averagesMm(const MemoConfig &full, const MemoConfig &mant,
           SuiteAvg &out_full, SuiteAvg &out_mant)
{
    // Fan the kernels out across the executor; reduce in kernel order.
    auto per_kernel =
        exec::sweep(mmKernels(), [&](const MmKernel &k) {
            if (k.name == "vsqrt")
                return std::vector<UnitHits>{};
            return measureMmKernelConfigs(k, {full, mant},
                                          bench::benchCrop);
        });

    int nm = 0, nd = 0;
    for (const auto &hits : per_kernel) {
        if (hits.empty())
            continue;
        if (hits[0].fpMul >= 0) {
            out_full.fpMul += hits[0].fpMul;
            out_mant.fpMul += hits[1].fpMul;
            nm++;
        }
        if (hits[0].fpDiv >= 0) {
            out_full.fpDiv += hits[0].fpDiv;
            out_mant.fpDiv += hits[1].fpDiv;
            nd++;
        }
    }
    out_full.fpMul /= nm;
    out_mant.fpMul /= nm;
    out_full.fpDiv /= nd;
    out_mant.fpDiv /= nd;
}

SuiteAvg
averagePerfect(const MemoConfig &cfg)
{
    auto per_workload =
        exec::sweep(perfectWorkloads(), [&](const SciWorkload &w) {
            return measureSci(w, cfg);
        });

    SuiteAvg avg;
    int nm = 0, nd = 0;
    for (const UnitHits &h : per_workload) {
        if (h.fpMul >= 0) {
            avg.fpMul += h.fpMul;
            nm++;
        }
        if (h.fpDiv >= 0) {
            avg.fpDiv += h.fpDiv;
            nd++;
        }
    }
    avg.fpMul /= nm;
    avg.fpDiv /= nd;
    return avg;
}

} // anonymous namespace

int
main()
{
    bench::printHeader("Mantissa-only vs full-value tags (32/4 suite "
                       "averages)",
                       "Table 10");

    MemoConfig full;
    MemoConfig mant;
    mant.tagMode = TagMode::MantissaOnly;

    SuiteAvg perfect_full = averagePerfect(full);
    SuiteAvg perfect_mant = averagePerfect(mant);
    SuiteAvg mm_full, mm_mant;
    averagesMm(full, mant, mm_full, mm_mant);

    TextTable t({"suite", "fp mult full", "fp mult mant",
                 "fp div full", "fp div mant", "paper (mf/mm/df/dm)"});
    t.addRow({"Perfect", TextTable::ratio(perfect_full.fpMul),
              TextTable::ratio(perfect_mant.fpMul),
              TextTable::ratio(perfect_full.fpDiv),
              TextTable::ratio(perfect_mant.fpDiv),
              ".11/.11/.16/.17"});
    t.addRow({"Multi-Media", TextTable::ratio(mm_full.fpMul),
              TextTable::ratio(mm_mant.fpMul),
              TextTable::ratio(mm_full.fpDiv),
              TextTable::ratio(mm_mant.fpDiv), ".39/.43/.47/.50"});
    t.print(std::cout);

    std::cout << "\nShape to check: mantissa-only tags raise hit "
                 "ratios slightly (a few points),\nat the cost of "
                 "exponent-reconstruction hardware in the table.\n";
    return 0;
}
