#include "common.hh"

#include <iostream>

#include "img/generate.hh"

namespace memo::bench
{

const std::vector<std::string> &
speedupApps()
{
    // The nine applications of Tables 11 and 12.
    static const std::vector<std::string> apps = {
        "venhance", "vbrf", "vsqrt", "vslope", "vbpf",
        "vkmeans", "vspatial", "vgauss", "vgpwl",
    };
    return apps;
}

AppCycles
measureAppCycles(const MmKernel &kernel, const LatencyConfig &lat,
                 bool memo_mul, bool memo_div)
{
    CpuConfig cpu_cfg;
    cpu_cfg.lat = lat;
    CpuModel cpu(cpu_cfg);

    MemoBank bank;
    if (memo_mul)
        bank.addTable(Operation::FpMul, MemoConfig{});
    if (memo_div)
        bank.addTable(Operation::FpDiv, MemoConfig{});

    AppCycles acc;
    for (const auto &named : standardImages()) {
        // Shared cached trace: the speedup tables call this for up to
        // three (memo_mul, memo_div) variants and two latency presets
        // per app, and re-tracing each time dominated their runtime.
        auto trace = cachedMmKernelTrace(kernel, named, benchCrop);

        SimResult base = cpu.run(*trace);
        acc.totalCycles += base.totalCycles;
        acc.fpDivCycles += base.cyclesOf(InstClass::FpDiv);
        acc.fpMulCycles += base.cyclesOf(InstClass::FpMul);

        if (MemoTable *t = bank.table(Operation::FpMul))
            t->flush();
        if (MemoTable *t = bank.table(Operation::FpDiv))
            t->flush();
        SimResult memo = cpu.run(*trace, &bank);
        acc.memoTotalCycles += memo.totalCycles;
    }

    if (const MemoTable *t = bank.table(Operation::FpDiv)) {
        if (t->stats().lookups)
            acc.hitRatioFpDiv = t->stats().hitRatio();
    }
    if (const MemoTable *t = bank.table(Operation::FpMul)) {
        if (t->stats().lookups)
            acc.hitRatioFpMul = t->stats().hitRatio();
    }
    return acc;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n== " << title << " ==\n"
              << "   (reproduces " << paper_ref << ")\n\n";
}

void
printSciSuite(const std::vector<SciWorkload> &suite)
{
    // The measurement (parallel fan-out, pooled averages) lives in the
    // golden layer so the snapshots diff exactly what we print here.
    check::SciSuiteResult r = check::measureSciSuite(suite);

    TextTable t({"application", "int mult", "fp mult", "fp div",
                 "int mult inf", "fp mult inf", "fp div inf",
                 "paper 32 (i/m/d)", "paper inf (i/m/d)"});

    for (size_t wi = 0; wi < suite.size(); wi++) {
        const SciWorkload &w = suite[wi];
        const UnitHits &h32 = r.rows[wi].h32;
        const UnitHits &hinf = r.rows[wi].hinf;
        t.addRow({w.name, TextTable::ratio(h32.intMul),
                  TextTable::ratio(h32.fpMul),
                  TextTable::ratio(h32.fpDiv),
                  TextTable::ratio(hinf.intMul),
                  TextTable::ratio(hinf.fpMul),
                  TextTable::ratio(hinf.fpDiv),
                  TextTable::ratio(w.paper.intMul32) + "/" +
                      TextTable::ratio(w.paper.fpMul32) + "/" +
                      TextTable::ratio(w.paper.fpDiv32),
                  TextTable::ratio(w.paper.intMulInf) + "/" +
                      TextTable::ratio(w.paper.fpMulInf) + "/" +
                      TextTable::ratio(w.paper.fpDivInf)});
    }
    t.addRow({"average", TextTable::ratio(r.avg32.intMul),
              TextTable::ratio(r.avg32.fpMul),
              TextTable::ratio(r.avg32.fpDiv),
              TextTable::ratio(r.avgInf.intMul),
              TextTable::ratio(r.avgInf.fpMul),
              TextTable::ratio(r.avgInf.fpDiv), "", ""});
    t.print(std::cout);
}

} // namespace memo::bench
