#include "common.hh"

#include <iostream>

#include "exec/parallel.hh"
#include "img/generate.hh"

namespace memo::bench
{

const std::vector<std::string> &
speedupApps()
{
    // The nine applications of Tables 11 and 12.
    static const std::vector<std::string> apps = {
        "venhance", "vbrf", "vsqrt", "vslope", "vbpf",
        "vkmeans", "vspatial", "vgauss", "vgpwl",
    };
    return apps;
}

AppCycles
measureAppCycles(const MmKernel &kernel, const LatencyConfig &lat,
                 bool memo_mul, bool memo_div)
{
    CpuConfig cpu_cfg;
    cpu_cfg.lat = lat;
    CpuModel cpu(cpu_cfg);

    MemoBank bank;
    if (memo_mul)
        bank.addTable(Operation::FpMul, MemoConfig{});
    if (memo_div)
        bank.addTable(Operation::FpDiv, MemoConfig{});

    AppCycles acc;
    for (const auto &named : standardImages()) {
        // Shared cached trace: the speedup tables call this for up to
        // three (memo_mul, memo_div) variants and two latency presets
        // per app, and re-tracing each time dominated their runtime.
        auto trace = cachedMmKernelTrace(kernel, named, benchCrop);

        SimResult base = cpu.run(*trace);
        acc.totalCycles += base.totalCycles;
        acc.fpDivCycles += base.cyclesOf(InstClass::FpDiv);
        acc.fpMulCycles += base.cyclesOf(InstClass::FpMul);

        if (MemoTable *t = bank.table(Operation::FpMul))
            t->flush();
        if (MemoTable *t = bank.table(Operation::FpDiv))
            t->flush();
        SimResult memo = cpu.run(*trace, &bank);
        acc.memoTotalCycles += memo.totalCycles;
    }

    if (const MemoTable *t = bank.table(Operation::FpDiv)) {
        if (t->stats().lookups)
            acc.hitRatioFpDiv = t->stats().hitRatio();
    }
    if (const MemoTable *t = bank.table(Operation::FpMul)) {
        if (t->stats().lookups)
            acc.hitRatioFpMul = t->stats().hitRatio();
    }
    return acc;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n== " << title << " ==\n"
              << "   (reproduces " << paper_ref << ")\n\n";
}

void
printSciSuite(const std::vector<SciWorkload> &suite)
{
    MemoConfig c32;
    MemoConfig cinf;
    cinf.infinite = true;

    TextTable t({"application", "int mult", "fp mult", "fp div",
                 "int mult inf", "fp mult inf", "fp div inf",
                 "paper 32 (i/m/d)", "paper inf (i/m/d)"});

    // Measure the suite in parallel (two index-aligned result slots
    // per workload), then reduce and print in suite order.
    struct Pair
    {
        UnitHits h32, hinf;
    };
    auto rows = exec::sweep(suite, [&](const SciWorkload &w) {
        return Pair{measureSci(w, c32), measureSci(w, cinf)};
    });

    double s32[3] = {}, sinf[3] = {};
    int n32[3] = {}, ninf[3] = {};
    for (size_t wi = 0; wi < suite.size(); wi++) {
        const SciWorkload &w = suite[wi];
        const UnitHits &h32 = rows[wi].h32;
        const UnitHits &hinf = rows[wi].hinf;
        t.addRow({w.name, TextTable::ratio(h32.intMul),
                  TextTable::ratio(h32.fpMul),
                  TextTable::ratio(h32.fpDiv),
                  TextTable::ratio(hinf.intMul),
                  TextTable::ratio(hinf.fpMul),
                  TextTable::ratio(hinf.fpDiv),
                  TextTable::ratio(w.paper.intMul32) + "/" +
                      TextTable::ratio(w.paper.fpMul32) + "/" +
                      TextTable::ratio(w.paper.fpDiv32),
                  TextTable::ratio(w.paper.intMulInf) + "/" +
                      TextTable::ratio(w.paper.fpMulInf) + "/" +
                      TextTable::ratio(w.paper.fpDivInf)});
        double h32v[3] = {h32.intMul, h32.fpMul, h32.fpDiv};
        double hinfv[3] = {hinf.intMul, hinf.fpMul, hinf.fpDiv};
        for (int k = 0; k < 3; k++) {
            if (h32v[k] >= 0) {
                s32[k] += h32v[k];
                n32[k]++;
            }
            if (hinfv[k] >= 0) {
                sinf[k] += hinfv[k];
                ninf[k]++;
            }
        }
    }
    auto avg = [](double s, int n) { return n ? s / n : -1.0; };
    t.addRow({"average", TextTable::ratio(avg(s32[0], n32[0])),
              TextTable::ratio(avg(s32[1], n32[1])),
              TextTable::ratio(avg(s32[2], n32[2])),
              TextTable::ratio(avg(sinf[0], ninf[0])),
              TextTable::ratio(avg(sinf[1], ninf[1])),
              TextTable::ratio(avg(sinf[2], ninf[2])), "", ""});
    t.print(std::cout);
}

} // namespace memo::bench
