#include "common.hh"

#include <iostream>
#include <stdexcept>
#include <thread>

#include "exec/trace_cache.hh"
#include "img/generate.hh"

namespace memo::bench
{

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n== " << title << " ==\n"
              << "   (reproduces " << paper_ref << ")\n\n";
}

void
printSciSuite(const std::vector<SciWorkload> &suite)
{
    // The measurement (parallel fan-out, pooled averages) lives in the
    // golden layer so the snapshots diff exactly what we print here.
    check::SciSuiteResult r = check::measureSciSuite(suite);

    TextTable t({"application", "int mult", "fp mult", "fp div",
                 "int mult inf", "fp mult inf", "fp div inf",
                 "paper 32 (i/m/d)", "paper inf (i/m/d)"});

    for (size_t wi = 0; wi < suite.size(); wi++) {
        const SciWorkload &w = suite[wi];
        const UnitHits &h32 = r.rows[wi].h32;
        const UnitHits &hinf = r.rows[wi].hinf;
        t.addRow({w.name, TextTable::ratio(h32.intMul),
                  TextTable::ratio(h32.fpMul),
                  TextTable::ratio(h32.fpDiv),
                  TextTable::ratio(hinf.intMul),
                  TextTable::ratio(hinf.fpMul),
                  TextTable::ratio(hinf.fpDiv),
                  TextTable::ratio(w.paper.intMul32) + "/" +
                      TextTable::ratio(w.paper.fpMul32) + "/" +
                      TextTable::ratio(w.paper.fpDiv32),
                  TextTable::ratio(w.paper.intMulInf) + "/" +
                      TextTable::ratio(w.paper.fpMulInf) + "/" +
                      TextTable::ratio(w.paper.fpDivInf)});
    }
    t.addRow({"average", TextTable::ratio(r.avg32.intMul),
              TextTable::ratio(r.avg32.fpMul),
              TextTable::ratio(r.avg32.fpDiv),
              TextTable::ratio(r.avgInf.intMul),
              TextTable::ratio(r.avgInf.fpMul),
              TextTable::ratio(r.avgInf.fpDiv), "", ""});
    t.print(std::cout);
}

void
printSpeedups(const check::SpeedupResult &r, const std::string &fast_tag,
              const std::string &slow_tag)
{
    bool with_hit = r.avgHit >= 0;
    std::vector<std::string> header{"app"};
    if (with_hit)
        header.push_back("hit");
    for (const std::string &tag : {fast_tag, slow_tag}) {
        header.push_back("FE " + tag);
        header.push_back("SE " + tag);
        header.push_back("speedup " + tag);
        header.push_back("meas " + tag);
    }
    TextTable t(header);

    for (const check::SpeedupRow &row : r.rows) {
        std::vector<std::string> cells{row.app};
        if (with_hit)
            cells.push_back(TextTable::ratio(row.hit));
        for (const check::SpeedupCell *cell : {&row.fast, &row.slow}) {
            cells.push_back(TextTable::fixed(cell->fe, 3));
            cells.push_back(TextTable::fixed(cell->se, 2));
            cells.push_back(TextTable::fixed(cell->speedup, 2));
            cells.push_back(TextTable::fixed(cell->measured, 2));
        }
        t.addRow(cells);
    }
    std::vector<std::string> avg{"average"};
    if (with_hit)
        avg.push_back(TextTable::ratio(r.avgHit));
    avg.insert(avg.end(), {"", "", TextTable::fixed(r.avgFast, 2), "",
                           "", "", TextTable::fixed(r.avgSlow, 2), ""});
    t.addRow(avg);
    t.print(std::cout);
}

prof::BenchRecord
makeBenchRecord(const std::string &scenario, const std::string &suite,
                unsigned jobs)
{
    prof::BenchRecord r;
    r.scenario = scenario;
    r.suite = suite;
    r.jobs = jobs;
    r.env = prof::EnvManifest::collect();
    // Uniform environment extras: every record of every suite carries
    // the host thread budget and the trace-cache memory trajectory, so
    // cross-suite tooling never has to special-case which scenario
    // happened to record them. The disk-tier counters stay zero unless
    // a spill directory is configured (MEMO_TRACE_SPILL_DIR or
    // --trace-spill-dir on the tools).
    r.extra["hardwareThreads"] =
        static_cast<double>(std::thread::hardware_concurrency());
    const auto &tc = exec::TraceCache::instance();
    constexpr double mb = 1024.0 * 1024.0;
    r.extra["traceCacheResidentMb"] =
        static_cast<double>(tc.residentBytes()) / mb;
    r.extra["traceCacheSpilledMb"] =
        static_cast<double>(tc.spilledBytes()) / mb;
    r.extra["traceCacheSharedMb"] =
        static_cast<double>(tc.sharedBytes()) / mb;
    r.extra["traceCacheSpills"] = static_cast<double>(tc.spills());
    r.extra["traceCacheAdmits"] = static_cast<double>(tc.admits());
    return r;
}

void
writeBenchRecords(const std::string &path,
                  const std::vector<prof::BenchRecord> &records)
{
    if (!prof::writeBenchFile(path, records))
        throw std::runtime_error("cannot write " + path);
    std::cout << "\nwrote " << path << "\n";
}

} // namespace memo::bench
