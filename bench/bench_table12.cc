/**
 * @file
 * Table 12: speedup when fp multiplication is memoized, with the
 * multiplier at 3 or 5 cycles.
 */

#include <iostream>

#include "common.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Speedup with fp multiplication memoized (3 / 5 "
                       "cycle multiplier)",
                       "Table 12");

    bench::printSpeedups(
        check::measureSpeedups(check::SpeedupUnit::FpMul), "@3", "@5");

    std::cout << "\nPaper averages: hit .28, speedup 1.02 @3 cycles "
                 "and 1.03 @5 cycles.\nShape to check: multiplication "
                 "memoing yields clearly smaller speedups than\n"
                 "division memoing (Table 11) because the avoided "
                 "latency is smaller.\n";
    return 0;
}
