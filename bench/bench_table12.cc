/**
 * @file
 * Table 12: speedup when fp multiplication is memoized, with the
 * multiplier at 3 or 5 cycles.
 */

#include <iostream>

#include "common.hh"
#include "sim/amdahl.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Speedup with fp multiplication memoized (3 / 5 "
                       "cycle multiplier)",
                       "Table 12");

    TextTable t({"app", "hit", "FE@3", "SE@3", "speedup@3", "meas@3",
                 "FE@5", "SE@5", "speedup@5", "meas@5"});

    double sum3 = 0.0, sum5 = 0.0, sum_hit = 0.0;
    for (const auto &name : bench::speedupApps()) {
        const MmKernel &k = mmKernelByName(name);
        auto fast = bench::measureAppCycles(
            k, LatencyConfig::custom(3, 13), true, false);
        auto slow = bench::measureAppCycles(
            k, LatencyConfig::custom(5, 13), true, false);

        double hit = fast.hitRatioFpMul < 0 ? 0.0 : fast.hitRatioFpMul;
        double fe3 = static_cast<double>(fast.fpMulCycles) /
                     fast.totalCycles;
        double se3 = speedupEnhanced(3, hit);
        double sp3 = amdahlSpeedup(fe3, se3);
        double meas3 = static_cast<double>(fast.totalCycles) /
                       fast.memoTotalCycles;

        double fe5 = static_cast<double>(slow.fpMulCycles) /
                     slow.totalCycles;
        double se5 = speedupEnhanced(5, hit);
        double sp5 = amdahlSpeedup(fe5, se5);
        double meas5 = static_cast<double>(slow.totalCycles) /
                       slow.memoTotalCycles;

        t.addRow({name, TextTable::ratio(hit),
                  TextTable::fixed(fe3, 3), TextTable::fixed(se3, 2),
                  TextTable::fixed(sp3, 2), TextTable::fixed(meas3, 2),
                  TextTable::fixed(fe5, 3), TextTable::fixed(se5, 2),
                  TextTable::fixed(sp5, 2),
                  TextTable::fixed(meas5, 2)});
        sum3 += sp3;
        sum5 += sp5;
        sum_hit += hit;
    }
    size_t n = bench::speedupApps().size();
    t.addRow({"average", TextTable::ratio(sum_hit / n), "", "",
              TextTable::fixed(sum3 / n, 2), "", "", "",
              TextTable::fixed(sum5 / n, 2), ""});
    t.print(std::cout);

    std::cout << "\nPaper averages: hit .28, speedup 1.02 @3 cycles "
                 "and 1.03 @5 cycles.\nShape to check: multiplication "
                 "memoing yields clearly smaller speedups than\n"
                 "division memoing (Table 11) because the avoided "
                 "latency is smaller.\n";
    return 0;
}
