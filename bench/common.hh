/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */

#ifndef MEMO_BENCH_COMMON_HH
#define MEMO_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/table.hh"
#include "check/golden.hh"
#include "img/generate.hh"
#include "sim/cpu.hh"
#include "workloads/workload.hh"

namespace memo::bench
{

/**
 * Crop size used by all hit-ratio benches: the golden regression
 * snapshots (src/check/golden.hh) measure with the same crop, so the
 * benches and the goldens report identical numbers.
 */
constexpr int benchCrop = check::goldenCrop;

/** The nine applications of the speedup tables (Tables 11-13). */
const std::vector<std::string> &speedupApps();

/**
 * Aggregate of one MM application over the standard image set: the
 * concatenated trace (tables flushed between inputs when measuring)
 * and summed baseline cycle statistics.
 */
struct AppCycles
{
    double hitRatioFpDiv = -1.0;  //!< 32/4 table, pooled over inputs
    double hitRatioFpMul = -1.0;
    uint64_t totalCycles = 0;     //!< baseline (no memo) cycles
    uint64_t fpDivCycles = 0;
    uint64_t fpMulCycles = 0;
    uint64_t memoTotalCycles = 0; //!< cycles with the given bank
};

/**
 * Run @p kernel over every standard image under @p lat, with a 32/4
 * bank attached to the units selected by @p memo_mul / @p memo_div,
 * and accumulate cycles plus hit ratios.
 */
AppCycles measureAppCycles(const MmKernel &kernel,
                           const LatencyConfig &lat, bool memo_mul,
                           bool memo_div);

/** Print a top-level header for a bench binary. */
void printHeader(const std::string &title, const std::string &paper_ref);

/**
 * Print one scientific suite's 32/4-vs-infinite hit-ratio table with
 * the paper's reference columns (the body of Tables 5 and 6).
 */
void printSciSuite(const std::vector<SciWorkload> &suite);

} // namespace memo::bench

#endif // MEMO_BENCH_COMMON_HH
