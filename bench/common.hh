/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * The measurements themselves live in src/check (golden.hh and
 * measure.hh) so the benches, the golden snapshots and the
 * memo-report renderer all consume the same computations; what is
 * left here is presentation.
 */

#ifndef MEMO_BENCH_COMMON_HH
#define MEMO_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/table.hh"
#include "check/golden.hh"
#include "check/measure.hh"
#include "img/generate.hh"
#include "sim/cpu.hh"
#include "workloads/workload.hh"

namespace memo::bench
{

/**
 * Crop size used by all hit-ratio benches: the golden regression
 * snapshots (src/check/golden.hh) measure with the same crop, so the
 * benches and the goldens report identical numbers.
 */
constexpr int benchCrop = check::goldenCrop;

/** The nine applications of the speedup tables (see check::measure). */
using check::speedupApps;

/** Print a top-level header for a bench binary. */
void printHeader(const std::string &title, const std::string &paper_ref);

/**
 * Print one scientific suite's 32/4-vs-infinite hit-ratio table with
 * the paper's reference columns (the body of Tables 5 and 6).
 */
void printSciSuite(const std::vector<SciWorkload> &suite);

/**
 * Print one speedup table (the body of Tables 11/12/13) with
 * per-scenario FE/SE/analytic/measured columns under the given
 * fast/slow column tags ("@13"/"@39", "fast"/"slow", ...).
 */
void printSpeedups(const check::SpeedupResult &r,
                   const std::string &fast_tag,
                   const std::string &slow_tag);

} // namespace memo::bench

#endif // MEMO_BENCH_COMMON_HH
