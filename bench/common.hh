/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 *
 * The measurements themselves live in src/check (golden.hh and
 * measure.hh) so the benches, the golden snapshots and the
 * memo-report renderer all consume the same computations; what is
 * left here is presentation.
 */

#ifndef MEMO_BENCH_COMMON_HH
#define MEMO_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/table.hh"
#include "check/golden.hh"
#include "check/measure.hh"
#include "img/generate.hh"
#include "prof/bench_record.hh"
#include "sim/cpu.hh"
#include "workloads/workload.hh"

namespace memo::bench
{

/**
 * Crop size used by all hit-ratio benches: the golden regression
 * snapshots (src/check/golden.hh) measure with the same crop, so the
 * benches and the goldens report identical numbers.
 */
constexpr int benchCrop = check::goldenCrop;

/** The nine applications of the speedup tables (see check::measure). */
using check::speedupApps;

/** Print a top-level header for a bench binary. */
void printHeader(const std::string &title, const std::string &paper_ref);

/**
 * Print one scientific suite's 32/4-vs-infinite hit-ratio table with
 * the paper's reference columns (the body of Tables 5 and 6).
 */
void printSciSuite(const std::vector<SciWorkload> &suite);

/**
 * Print one speedup table (the body of Tables 11/12/13) with
 * per-scenario FE/SE/analytic/measured columns under the given
 * fast/slow column tags ("@13"/"@39", "fast"/"slow", ...).
 */
void printSpeedups(const check::SpeedupResult &r,
                   const std::string &fast_tag,
                   const std::string &slow_tag);

/**
 * Start one timing record under the shared BENCH_*.json schema
 * (prof/bench_record.hh): scenario/suite/jobs filled in, the
 * environment manifest attached. Callers push samples into
 * samplesSec and finish with prof::summarizeSamples.
 */
prof::BenchRecord makeBenchRecord(const std::string &scenario,
                                  const std::string &suite,
                                  unsigned jobs);

/**
 * Write @p records to @p path as the canonical schema-versioned
 * document (the same writer memo-bench uses for BENCH_history.json)
 * and log the path. Throws on I/O failure.
 */
void writeBenchRecords(const std::string &path,
                       const std::vector<prof::BenchRecord> &records);

} // namespace memo::bench

#endif // MEMO_BENCH_COMMON_HH
