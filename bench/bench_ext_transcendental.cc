/**
 * @file
 * Extension (paper section 4, future work): memoizing the sqrt, log,
 * exp and trigonometric units. Hit ratios of 32/4 tables on those
 * units across the Multi-Media kernels, and the speedup from
 * memoizing sqrt alongside mult/div.
 */

#include <iostream>

#include "common.hh"
#include "sim/amdahl.hh"

using namespace memo;

int
main()
{
    bench::printHeader("Memoizing sqrt/log/exp units (future-work "
                       "extension)",
                       "paper section 4");

    MemoConfig cfg;
    TextTable t({"application", "fp sqrt", "fp log", "fp exp"});
    for (const auto &k : mmKernels()) {
        MemoBank bank;
        bank.addTable(Operation::FpSqrt, cfg);
        bank.addTable(Operation::FpLog, cfg);
        bank.addTable(Operation::FpExp, cfg);
        for (const auto &ni : standardImages()) {
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            bank.table(Operation::FpSqrt)->flush();
            bank.table(Operation::FpLog)->flush();
            bank.table(Operation::FpExp)->flush();
            replayMemo(trace, bank);
        }
        auto ratio = [&](Operation op) {
            const MemoStats &s = bank.table(op)->stats();
            return s.lookups ? s.hitRatio() : -1.0;
        };
        double sq = ratio(Operation::FpSqrt);
        double lg = ratio(Operation::FpLog);
        double ex = ratio(Operation::FpExp);
        if (sq < 0 && lg < 0 && ex < 0)
            continue;
        t.addRow({k.name, TextTable::ratio(sq), TextTable::ratio(lg),
                  TextTable::ratio(ex)});
    }
    t.print(std::cout);

    // Speedup from adding a sqrt table to the mult/div tables on the
    // sqrt-heavy kernels (20-cycle digit-recurrence sqrt unit).
    std::cout << "\nSpeedup of sqrt-heavy kernels when the sqrt unit "
                 "is also memoized\n(3/13 FPU, 15-cycle sqrt):\n\n";
    TextTable s({"application", "mult+div only", "with sqrt table"});
    CpuConfig cpu_cfg;
    cpu_cfg.lat = LatencyConfig::custom(3, 13);
    cpu_cfg.lat[InstClass::FpSqrt] = 15;
    CpuModel cpu(cpu_cfg);
    for (const auto &name : {"vdiff", "vcost", "vsqrt", "vsurf"}) {
        const MmKernel &k = mmKernelByName(name);
        uint64_t base = 0, with_md = 0, with_all = 0;
        MemoBank md = MemoBank::standard(cfg);
        MemoBank all = MemoBank::standard(cfg);
        all.addTable(Operation::FpSqrt, cfg);
        for (const auto &ni : standardImages()) {
            Trace trace = traceMmKernel(k, ni.image, bench::benchCrop);
            base += cpu.run(trace).totalCycles;
            md.reset();
            all.reset();
            with_md += cpu.run(trace, &md).totalCycles;
            with_all += cpu.run(trace, &all).totalCycles;
        }
        s.addRow({name,
                  TextTable::fixed(static_cast<double>(base) / with_md,
                                   2),
                  TextTable::fixed(static_cast<double>(base) / with_all,
                                   2)});
    }
    s.print(std::cout);

    std::cout << "\nShape to check: sqrt operand streams in image code "
                 "reuse like divisions do,\nso the long-latency sqrt "
                 "unit benefits at least as much — the paper's "
                 "stated\nmotivation for extending the technique.\n";
    return 0;
}
