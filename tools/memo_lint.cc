/**
 * @file
 * memo-lint — the repo's determinism & concurrency static-analysis
 * pass (see docs/LINTING.md for the rule catalog and policy).
 *
 * Typical invocations:
 *
 *     memo-lint src tools                      # lint, human output
 *     memo-lint --format sarif src > lint.sarif
 *     memo-lint --baseline lint-baseline.json src tools
 *     memo-lint --write-baseline lint-baseline.json src tools
 *     memo-lint --update-baseline lint-baseline.json src tools
 *     memo-lint --self-test tests/lint_fixtures \
 *               --baseline lint-baseline.json src tools
 *     memo-lint --list-rules
 *
 * Exit status: 0 clean (no findings beyond the baseline and, when
 * requested, a passing fixture self-test), 1 findings, self-test
 * failure, or a baseline policy/staleness violation, 2
 * usage/configuration error.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "lint/driver.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: memo-lint [options] <file-or-dir>...\n"
          "\n"
          "options:\n"
          "  --root DIR             repo root for relative paths "
          "(default .)\n"
          "  --baseline FILE        tolerate findings recorded in "
          "FILE\n"
          "  --write-baseline FILE  record current findings and "
          "exit\n"
          "  --update-baseline FILE shrink a stale baseline; "
          "refuses error-severity findings\n"
          "  --format FMT           text | json | sarif "
          "(default text)\n"
          "  --self-test DIR        verify EXPECT annotations of "
          "the lint fixtures\n"
          "  --list-rules           print the rule catalog\n"
          "  --help                 this text\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    memo::lint::DriverConfig cfg;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "memo-lint: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--root") {
            cfg.root = value("--root");
        } else if (arg == "--baseline") {
            cfg.baselinePath = value("--baseline");
        } else if (arg == "--write-baseline") {
            cfg.writeBaselinePath = value("--write-baseline");
        } else if (arg == "--update-baseline") {
            cfg.updateBaselinePath = value("--update-baseline");
        } else if (arg == "--format") {
            cfg.format = value("--format");
        } else if (arg == "--self-test") {
            cfg.selfTestDir = value("--self-test");
        } else if (arg == "--list-rules") {
            cfg.listRules = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "memo-lint: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            cfg.paths.push_back(arg);
        }
    }
    if (cfg.paths.empty() && !cfg.listRules &&
        cfg.selfTestDir.empty()) {
        usage(std::cerr);
        return 2;
    }
    return memo::lint::runLint(cfg, std::cout, std::cerr);
}
