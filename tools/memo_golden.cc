/**
 * @file
 * Golden regression driver.
 *
 *   memo-golden --check DIR    # diff current values against the
 *                              # DIR/<name>.json snapshots
 *   memo-golden --regen DIR    # rewrite the snapshots
 *   memo-golden --list         # document names
 *
 * --check exits 1 on the first mismatching document, printing a line
 * diff of the canonical JSON. The snapshots live in tests/golden/ and
 * the `golden_diff` ctest runs --check against them; a deliberate
 * change to any reproduced paper value is acknowledged by committing
 * the --regen output.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/golden.hh"

namespace
{

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

/** Print a minimal line diff of expected vs actual. */
void
printDiff(const std::string &name, const std::string &want,
          const std::string &got)
{
    auto w = lines(want);
    auto g = lines(got);
    size_t n = std::max(w.size(), g.size());
    unsigned shown = 0;
    for (size_t i = 0; i < n && shown < 20; i++) {
        const std::string *wl = i < w.size() ? &w[i] : nullptr;
        const std::string *gl = i < g.size() ? &g[i] : nullptr;
        if (wl && gl && *wl == *gl)
            continue;
        if (wl)
            std::cout << "  -" << name << ".json:" << (i + 1) << ": "
                      << *wl << "\n";
        if (gl)
            std::cout << "  +" << name << ".json:" << (i + 1) << ": "
                      << *gl << "\n";
        shown++;
    }
    if (shown == 20)
        std::cout << "  ... (more differences suppressed)\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string mode, dir;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--list")) {
            mode = "list";
        } else if (!std::strcmp(argv[i], "--check") ||
                   !std::strcmp(argv[i], "--regen")) {
            mode = argv[i] + 2;
            if (i + 1 >= argc) {
                std::cerr << "memo-golden: " << argv[i]
                          << " needs a directory\n";
                return 2;
            }
            dir = argv[++i];
        } else {
            std::cerr << "usage: memo-golden --check DIR | --regen DIR "
                         "| --list\n";
            return std::strcmp(argv[i], "--help") &&
                           std::strcmp(argv[i], "-h")
                       ? 2
                       : 0;
        }
    }
    if (mode.empty()) {
        std::cerr << "usage: memo-golden --check DIR | --regen DIR | "
                     "--list\n";
        return 2;
    }

    if (mode == "list") {
        for (const auto &doc : memo::check::goldenDocs())
            std::cout << doc.name << "\n";
        return 0;
    }

    bool ok = true;
    for (const auto &doc : memo::check::goldenDocs()) {
        std::string path = dir + "/" + doc.name + ".json";
        std::string current = doc.produce();

        if (mode == "regen") {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) {
                std::cerr << "memo-golden: cannot write " << path
                          << "\n";
                return 2;
            }
            out << current;
            std::cout << "wrote " << path << "\n";
            continue;
        }

        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cout << "MISSING " << path
                      << " (run memo-golden --regen)\n";
            ok = false;
            continue;
        }
        std::ostringstream snap;
        snap << in.rdbuf();
        if (snap.str() == current) {
            std::cout << "ok " << doc.name << "\n";
        } else {
            std::cout << "DIFF " << doc.name
                      << ": reproduced paper values changed\n";
            printDiff(doc.name, snap.str(), current);
            ok = false;
        }
    }
    if (!ok)
        std::cout << "golden mismatch: if the change is intended, "
                     "regenerate with\n  memo-golden --regen "
                  << dir << "\n";
    return ok ? 0 : 1;
}
