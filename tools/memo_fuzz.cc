/**
 * @file
 * Seeded differential fuzzer CLI.
 *
 *   memo_fuzz --seed 1 --iters 10000          # campaign
 *   memo_fuzz --seed 1 --iters 10000 --mutation
 *
 * Exit status 0 means the harness behaved as expected: no invariant
 * violations in a normal campaign, or (with --mutation) all three
 * injected bugs — the tag-comparison bug, the batched-replay
 * block-boundary off-by-one, and the memo-lint lexer
 * newline-accounting fault — were caught. Any other outcome exits 1,
 * printing a shrunk counterexample and a one-line repro.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "check/fuzz.hh"
#include "prof/heartbeat.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed S] [--iters N] [--stream L] "
                 "[--mutation] [--verbose]\n"
                 "  --seed S     campaign seed (default 1)\n"
                 "  --iters N    fuzz cases to run (default 1000)\n"
                 "  --stream L   accesses per case (default 256)\n"
                 "  --mutation   self-test: inject a tag-comparison\n"
                 "               bug, a block-boundary off-by-one and\n"
                 "               a lint-lexer fault; the harness must\n"
                 "               catch all three\n"
                 "  --verbose    progress output every 1000 cases\n"
                 "  --progress   stderr heartbeat (rate/ETA); stdout\n"
                 "               stays byte-identical\n",
                 argv0);
}

uint64_t
parseU64(const char *flag, const char *val)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(val, &end, 0);
    if (!end || *end != '\0') {
        std::fprintf(stderr, "memo_fuzz: bad value for %s: %s\n", flag,
                     val);
        std::exit(2);
    }
    return v;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    memo::check::FuzzOptions opts;
    bool mutation = false;
    bool progress = false;

    for (int i = 1; i < argc; i++) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "memo_fuzz: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--seed")) {
            opts.seed = parseU64("--seed", need("--seed"));
        } else if (!std::strcmp(argv[i], "--iters")) {
            opts.iters = parseU64("--iters", need("--iters"));
        } else if (!std::strcmp(argv[i], "--stream")) {
            opts.streamLen = static_cast<unsigned>(
                parseU64("--stream", need("--stream")));
        } else if (!std::strcmp(argv[i], "--mutation")) {
            mutation = true;
        } else if (!std::strcmp(argv[i], "--verbose")) {
            opts.verbose = true;
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "memo_fuzz: unknown flag %s\n",
                         argv[i]);
            usage(argv[0]);
            return 2;
        }
    }

    if (mutation) {
        bool caught = memo::check::mutationSelfTest(opts, &std::cout);
        if (!caught) {
            std::cout << "FAIL: a differential harness did not "
                         "detect its injected bug\n";
            return 1;
        }
        std::cout << "ok: injected tag-comparison, block-boundary "
                     "and lint-lexer bugs detected\n";
        return 0;
    }

    // The heartbeat is stderr-only display: campaign verdicts and
    // stdout output are byte-identical with or without it.
    std::optional<memo::prof::Heartbeat> heartbeat;
    if (progress) {
        heartbeat.emplace("fuzz", opts.iters);
        opts.progress = &heartbeat->counter();
    }

    auto failure = memo::check::fuzz(opts, &std::cout);
    if (heartbeat)
        heartbeat->stop();
    return failure ? 1 : 0;
}
