/**
 * @file
 * memo-trace-dump: inspect saved traces and spill chunk stores.
 *
 * Usage:
 *   memo-trace-dump FILE [count]
 *       Print the class mix and first `count` records (default 20) of
 *       a trace saved by `memo-sim --save-trace`.
 *   memo-trace-dump --store DIR
 *       List every trace in a spill chunk store (docs/TRACE_FORMAT.md)
 *       with record/chunk counts, encoded sizes and the store-wide
 *       dedup ratio.
 *   memo-trace-dump --store DIR --key KEY [count]
 *       Decode one spilled trace and print it like the FILE form.
 *   memo-trace-dump --store DIR --chunks KEY
 *       Per-column chunk table of one spilled trace: chunk hashes,
 *       element counts, encoded bytes and compression ratios.
 *   memo-trace-dump --store DIR --stats KEY
 *       Per-column compression summary of one spilled trace: encoded
 *       vs raw bytes and the Shannon entropy of the zigzag delta
 *       stream (the quantity the delta+varint codec exploits), with
 *       the entropy-ideal size next to what the codec achieved.
 *   memo-trace-dump --store DIR --verify
 *       Fully decode every trace in the store; exit 1 if any chunk or
 *       manifest fails verification.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <map>
#include <string>
#include <vector>

#include "arith/fp.hh"
#include "trace/io.hh"
#include "trace/spill.hh"

using namespace memo;

namespace
{

void
printRecord(size_t index, const Instruction &inst)
{
    std::printf("%8zu  %-9s pc=%08x", index,
                std::string(instClassName(inst.cls)).c_str(), inst.pc);
    switch (inst.cls) {
      case InstClass::Load:
      case InstClass::Store:
        std::printf("  addr=%#llx",
                    static_cast<unsigned long long>(inst.addr));
        break;
      case InstClass::IntMul:
        std::printf("  %lld * %lld = %lld",
                    static_cast<long long>(inst.a),
                    static_cast<long long>(inst.b),
                    static_cast<long long>(inst.result));
        break;
      case InstClass::FpMul:
      case InstClass::FpDiv:
      case InstClass::FpAdd:
        std::printf("  %g %c %g = %g", fpFromBits(inst.a),
                    inst.cls == InstClass::FpDiv   ? '/'
                    : inst.cls == InstClass::FpMul ? '*'
                                                   : '+',
                    fpFromBits(inst.b), fpFromBits(inst.result));
        break;
      case InstClass::FpSqrt:
      case InstClass::FpLog:
      case InstClass::FpSin:
      case InstClass::FpCos:
      case InstClass::FpExp:
        std::printf("  f(%g) = %g", fpFromBits(inst.a),
                    fpFromBits(inst.result));
        break;
      default:
        break;
    }
    std::printf("\n");
}

void
printTrace(const std::string &name, const Trace &trace, size_t count)
{
    std::printf("%s: %zu instructions\n\n", name.c_str(), trace.size());

    OpMix mix = trace.mix();
    std::printf("instruction mix:\n");
    for (unsigned c = 0; c < numInstClasses; c++) {
        InstClass cls = static_cast<InstClass>(c);
        if (mix[cls] == 0)
            continue;
        std::printf("  %-9s %10llu  (%.1f%%)\n",
                    std::string(instClassName(cls)).c_str(),
                    static_cast<unsigned long long>(mix[cls]),
                    100.0 * mix.fraction(cls));
    }

    std::printf("\nfirst %zu records:\n",
                std::min(count, trace.size()));
    for (size_t i = 0; i < trace.size() && i < count; i++)
        printRecord(i, trace[i]);
}

/** Encoded + raw byte totals of one manifest's chunk set. */
struct ManifestBytes
{
    uint64_t chunks = 0;
    uint64_t encoded = 0; //!< on-disk bytes of the referenced chunks
    uint64_t raw = 0;     //!< decoded bytes (column width * elems)
};

ManifestBytes
bytesOf(const SpillStore &store, const TraceManifest &m)
{
    ManifestBytes mb;
    for (size_t c = 0; c < kNumTraceColumns; c++) {
        TraceColumn col = static_cast<TraceColumn>(c);
        for (const ChunkRef &ref : m.col(col)) {
            mb.chunks++;
            mb.encoded += store.chunkFileBytes(ref.hash);
            mb.raw += uint64_t{traceColumnWidth(col)} * ref.elems;
        }
    }
    return mb;
}

int
listStore(const SpillStore &store)
{
    std::vector<std::string> keys = store.keys();
    std::printf("%s: %zu trace(s)\n\n", store.root().c_str(),
                keys.size());
    std::printf("%-40s %12s %8s %14s %14s\n", "key", "records",
                "chunks", "encoded B", "raw B");
    uint64_t referenced = 0;
    for (const std::string &key : keys) {
        TraceManifest m = store.manifest(key);
        ManifestBytes mb = bytesOf(store, m);
        referenced += mb.encoded;
        std::printf("%-40s %12llu %8llu %14llu %14llu\n", key.c_str(),
                    static_cast<unsigned long long>(m.records),
                    static_cast<unsigned long long>(mb.chunks),
                    static_cast<unsigned long long>(mb.encoded),
                    static_cast<unsigned long long>(mb.raw));
    }
    // Store-wide dedup: bytes the manifests reference vs bytes the
    // content-addressed chunk files actually occupy once.
    uint64_t unique = 0;
    std::vector<uint64_t> seen;
    for (const std::string &key : keys)
        for (const auto &col : store.manifest(key).cols)
            for (const ChunkRef &ref : col)
                seen.push_back(ref.hash);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    for (uint64_t h : seen)
        unique += store.chunkFileBytes(h);
    std::printf("\nchunk files: %zu unique, %llu bytes on disk"
                " (%.2fx referenced)\n",
                seen.size(), static_cast<unsigned long long>(unique),
                unique ? static_cast<double>(referenced) /
                             static_cast<double>(unique)
                       : 0.0);
    return 0;
}

int
dumpChunks(const SpillStore &store, const std::string &key)
{
    TraceManifest m = store.manifest(key);
    std::printf("%s: %llu records, %llu operand rows, %llu addresses\n",
                key.c_str(),
                static_cast<unsigned long long>(m.records),
                static_cast<unsigned long long>(m.ops),
                static_cast<unsigned long long>(m.addrs));
    for (size_t c = 0; c < kNumTraceColumns; c++) {
        TraceColumn col = static_cast<TraceColumn>(c);
        const auto &refs = m.col(col);
        std::printf("\ncolumn %-6s (%u-byte elems, %zu chunk%s)\n",
                    traceColumnName(col), traceColumnWidth(col),
                    refs.size(), refs.size() == 1 ? "" : "s");
        for (size_t i = 0; i < refs.size(); i++) {
            uint64_t disk = store.chunkFileBytes(refs[i].hash);
            uint64_t raw =
                uint64_t{traceColumnWidth(col)} * refs[i].elems;
            std::printf("  [%4zu] %016llx  %8u elems  %10llu B"
                        "  (%.2fx)\n",
                        i,
                        static_cast<unsigned long long>(refs[i].hash),
                        refs[i].elems,
                        static_cast<unsigned long long>(disk),
                        disk ? static_cast<double>(raw) /
                                   static_cast<double>(disk)
                             : 0.0);
        }
    }
    return 0;
}

/** Slurp one content-addressed chunk file (throws SpillError). */
std::string
readChunkFile(const SpillStore &store, uint64_t hash)
{
    std::ifstream in(store.chunkPath(hash), std::ios::binary);
    if (!in)
        throw SpillError("missing chunk " + store.chunkPath(hash));
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

/**
 * Per-column compression and delta-entropy summary: how many bits per
 * element the zigzag delta stream carries (Shannon entropy of the
 * delta value distribution, delta state reset per chunk exactly as
 * the codec resets it) next to the bytes the LEB128 encoding actually
 * spends. Columns whose deltas concentrate on few values (cls runs,
 * monotonic pc) compress far below their raw width; high-entropy
 * operand columns approach it.
 */
int
statsStore(const SpillStore &store, const std::string &key)
{
    TraceManifest m = store.manifest(key);
    std::printf("%s: %llu records\n\n", key.c_str(),
                static_cast<unsigned long long>(m.records));
    std::printf("%-6s %12s %12s %12s %7s %12s %13s\n", "column",
                "elems", "raw B", "encoded B", "ratio", "H bits/elem",
                "H-ideal B");
    uint64_t tot_raw = 0, tot_enc = 0;
    double tot_ideal = 0.0;
    for (size_t c = 0; c < kNumTraceColumns; c++) {
        TraceColumn col = static_cast<TraceColumn>(c);
        uint64_t elems = 0, enc = 0;
        // Ordered map: the entropy fold below sums floats over the
        // histogram, so the iteration order must be deterministic.
        std::map<uint64_t, uint64_t> deltas;
        for (const ChunkRef &ref : m.col(col)) {
            enc += store.chunkFileBytes(ref.hash);
            std::vector<uint64_t> v =
                decodeChunk(readChunkFile(store, ref.hash));
            uint64_t prev = 0; // per-chunk delta reset, as encoded
            for (uint64_t x : v) {
                uint64_t d = x - prev;
                prev = x;
                uint64_t zig =
                    (d << 1) ^ static_cast<uint64_t>(
                                   static_cast<int64_t>(d) >> 63);
                deltas[zig]++;
            }
            elems += v.size();
        }
        uint64_t raw = uint64_t{traceColumnWidth(col)} * elems;
        double entropy = 0.0;
        for (const auto &[zig, count] : deltas) {
            (void)zig;
            double p = static_cast<double>(count) /
                       static_cast<double>(elems);
            entropy -= p * std::log2(p);
        }
        double ideal = entropy * static_cast<double>(elems) / 8.0;
        tot_raw += raw;
        tot_enc += enc;
        tot_ideal += ideal;
        std::printf("%-6s %12llu %12llu %12llu %6.2fx %12.2f %13.0f\n",
                    traceColumnName(col),
                    static_cast<unsigned long long>(elems),
                    static_cast<unsigned long long>(raw),
                    static_cast<unsigned long long>(enc),
                    enc ? static_cast<double>(raw) /
                              static_cast<double>(enc)
                        : 0.0,
                    elems ? entropy : 0.0, ideal);
    }
    std::printf("\ntotal: %llu raw B, %llu encoded B (%.2fx);"
                " delta-entropy bound %.0f B (%.0f%% of encoded —"
                " the varint's whole-byte floor is the gap)\n",
                static_cast<unsigned long long>(tot_raw),
                static_cast<unsigned long long>(tot_enc),
                tot_enc ? static_cast<double>(tot_raw) /
                              static_cast<double>(tot_enc)
                        : 0.0,
                tot_ideal,
                tot_enc ? 100.0 * tot_ideal /
                              static_cast<double>(tot_enc)
                        : 0.0);
    return 0;
}

int
verifyStore(const SpillStore &store)
{
    int bad = 0;
    for (const std::string &key : store.keys()) {
        try {
            Trace t = store.read(key);
            std::printf("ok      %-40s %zu records\n", key.c_str(),
                        t.size());
        } catch (const SpillError &e) {
            std::printf("CORRUPT %-40s %s\n", key.c_str(), e.what());
            bad++;
        }
    }
    if (bad)
        std::fprintf(stderr, "memo-trace-dump: %d corrupt trace(s)\n",
                     bad);
    return bad ? 1 : 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: memo-trace-dump FILE [count]\n"
        "       memo-trace-dump --store DIR "
        "[--key KEY [count] | --chunks KEY | --stats KEY | "
        "--verify]\n");
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 3 && std::strcmp(argv[1], "--store") == 0) {
            SpillStore store(argv[2]);
            if (argc == 3)
                return listStore(store);
            if (std::strcmp(argv[3], "--verify") == 0)
                return verifyStore(store);
            if (argc >= 5 && std::strcmp(argv[3], "--chunks") == 0)
                return dumpChunks(store, argv[4]);
            if (argc >= 5 && std::strcmp(argv[3], "--stats") == 0)
                return statsStore(store, argv[4]);
            if (argc >= 5 && std::strcmp(argv[3], "--key") == 0) {
                size_t count =
                    argc > 5
                        ? static_cast<size_t>(std::atol(argv[5]))
                        : 20;
                printTrace(argv[4], store.read(argv[4]), count);
                return 0;
            }
            return usage();
        }
        if (argc < 2 || argv[1][0] == '-')
            return usage();

        size_t count = argc > 2
                           ? static_cast<size_t>(std::atol(argv[2]))
                           : 20;
        printTrace(argv[1], readTrace(argv[1]), count);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "memo-trace-dump: %s\n", e.what());
        return 1;
    }
}
