/**
 * @file
 * memo-trace-dump: inspect a saved trace file.
 *
 * Usage:  memo-trace-dump FILE [count]
 *
 * Prints the instruction-class mix and the first `count` records
 * (default 20) in human-readable form. Companion to
 * `memo-sim --save-trace`.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arith/fp.hh"
#include "trace/io.hh"

using namespace memo;

namespace
{

void
printRecord(size_t index, const Instruction &inst)
{
    std::printf("%8zu  %-9s pc=%08x", index,
                std::string(instClassName(inst.cls)).c_str(), inst.pc);
    switch (inst.cls) {
      case InstClass::Load:
      case InstClass::Store:
        std::printf("  addr=%#llx",
                    static_cast<unsigned long long>(inst.addr));
        break;
      case InstClass::IntMul:
        std::printf("  %lld * %lld = %lld",
                    static_cast<long long>(inst.a),
                    static_cast<long long>(inst.b),
                    static_cast<long long>(inst.result));
        break;
      case InstClass::FpMul:
      case InstClass::FpDiv:
      case InstClass::FpAdd:
        std::printf("  %g %c %g = %g", fpFromBits(inst.a),
                    inst.cls == InstClass::FpDiv   ? '/'
                    : inst.cls == InstClass::FpMul ? '*'
                                                   : '+',
                    fpFromBits(inst.b), fpFromBits(inst.result));
        break;
      case InstClass::FpSqrt:
      case InstClass::FpLog:
      case InstClass::FpSin:
      case InstClass::FpCos:
      case InstClass::FpExp:
        std::printf("  f(%g) = %g", fpFromBits(inst.a),
                    fpFromBits(inst.result));
        break;
      default:
        break;
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: memo-trace-dump FILE [count]\n");
        return 1;
    }
    size_t count = argc > 2 ? static_cast<size_t>(std::atol(argv[2]))
                            : 20;
    try {
        Trace trace = readTrace(argv[1]);
        std::printf("%s: %zu instructions\n\n", argv[1], trace.size());

        OpMix mix = trace.mix();
        std::printf("instruction mix:\n");
        for (unsigned c = 0; c < numInstClasses; c++) {
            InstClass cls = static_cast<InstClass>(c);
            if (mix[cls] == 0)
                continue;
            std::printf("  %-9s %10llu  (%.1f%%)\n",
                        std::string(instClassName(cls)).c_str(),
                        static_cast<unsigned long long>(mix[cls]),
                        100.0 * mix.fraction(cls));
        }

        std::printf("\nfirst %zu records:\n",
                    std::min(count, trace.size()));
        for (size_t i = 0; i < trace.size() && i < count; i++)
            printRecord(i, trace[i]);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "memo-trace-dump: %s\n", e.what());
        return 1;
    }
}
