/**
 * @file
 * memo-sim: command-line front end to the whole framework.
 *
 * Runs any bundled workload (or a pipeline of Khoros kernels) on any
 * bundled or user-supplied image, under a fully configurable
 * MEMO-TABLE and processor, and reports hit ratios, cycle counts,
 * cache behaviour, instruction mix and reuse-distance analytics.
 * Traces can be saved and replayed.
 *
 * Examples:
 *   memo-sim --workload vkmeans --image mandrill
 *   memo-sim --workload hydro2d --entries 16 --ways 2 --csv
 *   memo-sim --pipeline vgef,venhance --image my.pgm --preset slow
 *   memo-sim --workload vcost --image fractal --save-trace t.bin
 *   memo-sim --load-trace t.bin --reuse --opmix
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/reuse.hh"
#include "arith/fp.hh"
#include "analysis/table.hh"
#include "exec/parallel.hh"
#include "exec/thread_pool.hh"
#include "exec/trace_cache.hh"
#include "img/generate.hh"
#include "img/pnm.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"
#include "obs/tracer.hh"
#include "prof/heartbeat.hh"
#include "prof/prof.hh"
#include "sim/cpu.hh"
#include "trace/io.hh"
#include "workloads/workload.hh"

using namespace memo;

namespace
{

struct Options
{
    std::string workload;
    std::vector<std::string> pipeline;
    std::string image = "mandrill";
    std::string preset = "fast";
    std::string saveTrace;
    std::string loadTrace;
    std::string statsFile;
    std::string traceEvents;   //!< Chrome-trace JSON output path
    std::string profileTrace;  //!< host-span Chrome-trace output path
    uint64_t samplePeriod = 1; //!< record every Nth table event
    uint64_t phaseWindow = 0;  //!< phase window in accesses (0 = off)
    std::string phaseOut = "phases.json"; //!< phase artifact path
    bool phasePerSet = false;  //!< per-set occupancy in phases.json
    bool progress = false;     //!< stderr heartbeat during replays
    MemoConfig table;
    int crop = 128;
    unsigned jobs = 0; //!< 0 = hardware_concurrency (default)
    bool csv = false;
    bool opmix = false;
    bool reuse = false;
    bool hot = false;
    bool noMemo = false;
};

void
usage()
{
    std::printf(
        "memo-sim — MEMO-TABLE trace simulator\n\n"
        "workload selection:\n"
        "  --workload NAME     MM kernel or scientific analogue\n"
        "  --pipeline A,B,C    run several MM kernels back to back\n"
        "  --image NAME|FILE   bundled image or .pgm/.ppm path\n"
        "  --crop N            centre-crop inputs to NxN (default 128)\n"
        "  --list              list workloads and images\n\n"
        "MEMO-TABLE configuration:\n"
        "  --entries N --ways N (default 32/4)\n"
        "  --infinite          unbounded fully associative table\n"
        "  --tag full|mant     tag mode (Table 10)\n"
        "  --trivial all|non|intgr  trivial policy (Table 9)\n"
        "  --repl lru|fifo|random   replacement policy\n"
        "  --hash xor|add      fp index hash\n"
        "  --no-memo           baseline run only\n\n"
        "processor:\n"
        "  --preset fast|slow|pentiumpro|alpha21164|r10000|ppc604e|\n"
        "           ultrasparc2|pa8000\n\n"
        "execution:\n"
        "  --jobs N            worker threads for the model runs\n"
        "                      (default: hardware concurrency; 1 = "
        "serial)\n"
        "  --trace-cache-budget MB  resident-bytes budget of the\n"
        "                      shared trace cache (default 768, or\n"
        "                      MEMO_TRACE_CACHE_MB)\n"
        "  --trace-spill-dir DIR    spill evicted traces to a chunk\n"
        "                      store under DIR and admit them back on\n"
        "                      miss (or MEMO_TRACE_SPILL_DIR); see\n"
        "                      docs/TRACE_FORMAT.md\n\n"
        "output & traces:\n"
        "  --csv               machine-readable output\n"
        "  --opmix             print the instruction-class mix\n"
        "  --reuse             reuse-distance analytics per unit\n"
        "  --hot               hottest operand pairs per unit\n"
        "  --save-trace FILE / --load-trace FILE\n"
        "  --stats FILE        write key=value statistics\n"
        "  --trace-events FILE write MEMO-TABLE events (hit/miss/\n"
        "                      insert/evict/abort) as Chrome trace\n"
        "                      JSON (load in about://tracing)\n"
        "  --sample N          record every Nth table event\n"
        "                      (default 1; counts stay exact)\n"
        "  --profile FILE      enable host profiling and write host\n"
        "                      spans (plus table events when\n"
        "                      --trace-events is active) as one\n"
        "                      Chrome-trace file\n"
        "  --phase-window N    collect phase-resolved (windowed)\n"
        "                      table metrics every N accesses; writes\n"
        "                      the versioned phases.json artifact and\n"
        "                      merges counter tracks into\n"
        "                      --trace-events output\n"
        "  --phase-out FILE    phase artifact path (default\n"
        "                      phases.json)\n"
        "  --phase-per-set     include per-set occupancy rows in the\n"
        "                      phase artifact (heatmap input)\n"
        "  --progress          stderr heartbeat (rate/ETA) during the\n"
        "                      replays; never touches stdout\n");
}

CpuPreset
parsePreset(const std::string &s)
{
    if (s == "fast")
        return CpuPreset::FastFpu;
    if (s == "slow")
        return CpuPreset::SlowFpu;
    if (s == "pentiumpro")
        return CpuPreset::PentiumPro;
    if (s == "alpha21164")
        return CpuPreset::Alpha21164;
    if (s == "r10000")
        return CpuPreset::MipsR10000;
    if (s == "ppc604e")
        return CpuPreset::Ppc604e;
    if (s == "ultrasparc2")
        return CpuPreset::UltraSparcII;
    if (s == "pa8000")
        return CpuPreset::Pa8000;
    throw std::runtime_error("unknown preset: " + s);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            throw std::runtime_error(std::string("missing value for ") +
                                     argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--workload") {
            opt.workload = need(i);
        } else if (a == "--pipeline") {
            opt.pipeline = splitList(need(i));
        } else if (a == "--image") {
            opt.image = need(i);
        } else if (a == "--crop") {
            opt.crop = std::atoi(need(i).c_str());
        } else if (a == "--entries") {
            opt.table.entries =
                static_cast<unsigned>(std::atoi(need(i).c_str()));
        } else if (a == "--ways") {
            opt.table.ways =
                static_cast<unsigned>(std::atoi(need(i).c_str()));
        } else if (a == "--infinite") {
            opt.table.infinite = true;
        } else if (a == "--tag") {
            std::string v = need(i);
            opt.table.tagMode = v == "mant" ? TagMode::MantissaOnly
                                            : TagMode::FullValue;
        } else if (a == "--trivial") {
            std::string v = need(i);
            opt.table.trivialMode =
                v == "all" ? TrivialMode::CacheAll
                : v == "intgr" ? TrivialMode::Integrated
                               : TrivialMode::NonTrivialOnly;
        } else if (a == "--repl") {
            std::string v = need(i);
            opt.table.replacement = v == "fifo" ? Replacement::Fifo
                                    : v == "random"
                                        ? Replacement::Random
                                        : Replacement::Lru;
        } else if (a == "--hash") {
            opt.table.hashScheme = need(i) == "xor"
                                       ? HashScheme::PaperXor
                                       : HashScheme::Additive;
        } else if (a == "--preset") {
            opt.preset = need(i);
        } else if (a == "--jobs") {
            int n = std::atoi(need(i).c_str());
            if (n <= 0)
                throw std::runtime_error("--jobs needs a positive N");
            opt.jobs = static_cast<unsigned>(n);
        } else if (a == "--trace-cache-budget") {
            long long mb = std::atoll(need(i).c_str());
            if (mb <= 0)
                throw std::runtime_error(
                    "--trace-cache-budget needs a positive MB count");
            exec::TraceCache::instance().setBudgetBytes(
                static_cast<size_t>(mb) * 1024 * 1024);
        } else if (a == "--trace-spill-dir") {
            exec::TraceCache::instance().setSpillDir(need(i));
        } else if (a == "--csv") {
            opt.csv = true;
        } else if (a == "--opmix") {
            opt.opmix = true;
        } else if (a == "--reuse") {
            opt.reuse = true;
        } else if (a == "--hot") {
            opt.hot = true;
        } else if (a == "--no-memo") {
            opt.noMemo = true;
        } else if (a == "--save-trace") {
            opt.saveTrace = need(i);
        } else if (a == "--load-trace") {
            opt.loadTrace = need(i);
        } else if (a == "--stats") {
            opt.statsFile = need(i);
        } else if (a == "--trace-events") {
            opt.traceEvents = need(i);
        } else if (a == "--profile") {
            opt.profileTrace = need(i);
        } else if (a == "--progress") {
            opt.progress = true;
        } else if (a == "--sample") {
            long long n = std::atoll(need(i).c_str());
            if (n <= 0)
                throw std::runtime_error("--sample needs a positive N");
            opt.samplePeriod = static_cast<uint64_t>(n);
        } else if (a == "--phase-window") {
            long long n = std::atoll(need(i).c_str());
            if (n <= 0)
                throw std::runtime_error(
                    "--phase-window needs a positive N");
            opt.phaseWindow = static_cast<uint64_t>(n);
        } else if (a == "--phase-out") {
            opt.phaseOut = need(i);
        } else if (a == "--phase-per-set") {
            opt.phasePerSet = true;
        } else if (a == "--list") {
            std::printf("MM kernels:\n ");
            for (const auto &k : mmKernels())
                std::printf(" %s", k.name.c_str());
            std::printf("\nscientific analogues:\n ");
            for (const auto &w : perfectWorkloads())
                std::printf(" %s", w.name.c_str());
            for (const auto &w : specWorkloads())
                std::printf(" %s", w.name.c_str());
            std::printf("\nimages:\n ");
            for (const auto &ni : standardImages())
                std::printf(" %s", ni.name.c_str());
            std::printf("\n");
            std::exit(0);
        } else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            throw std::runtime_error("unknown option: " + a);
        }
    }
    return opt;
}

Image
loadImage(const Options &opt)
{
    if (opt.image.find('.') != std::string::npos &&
        (opt.image.ends_with(".pgm") || opt.image.ends_with(".ppm")))
        return readPnm(opt.image);
    // Bundled images use their Table 8 names; ".rgb" suffixed names
    // contain a dot but are bundled.
    return imageByName(opt.image).image;
}

Trace
buildTrace(const Options &opt)
{
    if (!opt.loadTrace.empty())
        return readTrace(opt.loadTrace);

    Trace trace;
    Recorder rec(trace);
    if (!opt.pipeline.empty()) {
        Image input = cropForTrace(loadImage(opt), opt.crop);
        for (const auto &name : opt.pipeline)
            mmKernelByName(name).run(rec, input, nullptr);
        return trace;
    }
    if (opt.workload.empty())
        throw std::runtime_error(
            "need --workload, --pipeline or --load-trace "
            "(see --help)");
    // MM kernel first, scientific analogue otherwise.
    for (const auto &k : mmKernels()) {
        if (k.name == opt.workload) {
            Image input = cropForTrace(loadImage(opt), opt.crop);
            k.run(rec, input, nullptr);
            return trace;
        }
    }
    sciWorkloadByName(opt.workload).run(rec);
    return trace;
}

void
printOpMix(const Trace &trace, bool csv)
{
    OpMix mix = trace.mix();
    TextTable t({"class", "count", "fraction"});
    for (unsigned c = 0; c < numInstClasses; c++) {
        InstClass cls = static_cast<InstClass>(c);
        if (mix[cls] == 0)
            continue;
        t.addRow({std::string(instClassName(cls)),
                  TextTable::count(mix[cls]),
                  TextTable::fixed(100.0 * mix.fraction(cls), 1) + "%"});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

void
printHot(const Trace &trace, bool csv)
{
    TextTable t({"unit", "operand a", "operand b", "count"});
    for (Operation op : {Operation::IntMul, Operation::FpMul,
                         Operation::FpDiv}) {
        for (const auto &p : hottestPairs(trace, op, 5)) {
            std::string a_str, b_str;
            if (op == Operation::IntMul) {
                a_str = std::to_string(static_cast<int64_t>(p.aBits));
                b_str = std::to_string(static_cast<int64_t>(p.bBits));
            } else {
                a_str = TextTable::fixed(fpFromBits(p.aBits), 4);
                b_str = TextTable::fixed(fpFromBits(p.bBits), 4);
            }
            t.addRow({std::string(operationName(op)), a_str, b_str,
                      TextTable::count(p.count)});
        }
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

void
printReuse(const Trace &trace, bool csv)
{
    TextTable t({"unit", "accesses", "cold", "pred@8", "pred@32",
                 "pred@1024", "entries for 50%"});
    for (Operation op : {Operation::IntMul, Operation::FpMul,
                         Operation::FpDiv}) {
        ReuseProfile prof = reuseProfile(trace, op);
        if (prof.accesses() == 0)
            continue;
        unsigned need = prof.entriesForHitRatio(0.5);
        t.addRow({std::string(operationName(op)),
                  TextTable::count(prof.accesses()),
                  TextTable::count(prof.coldMisses()),
                  TextTable::ratio(prof.predictedHitRatio(8)),
                  TextTable::ratio(prof.predictedHitRatio(32)),
                  TextTable::ratio(prof.predictedHitRatio(1024)),
                  need ? TextTable::count(need) : "> 8192"});
    }
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        Options opt = parseArgs(argc, argv);
        if (std::string err = opt.table.validate(); !err.empty())
            throw std::runtime_error("table config: " + err);

        auto &profiler = prof::Profiler::global();
        if (!opt.profileTrace.empty())
            profiler.setEnabled(true);

        // The build_trace span is recorded manually: a ProfSpan
        // registers this thread's span buffer (a heap allocation) on
        // construction, and any allocation before the workload runs
        // shifts the workload's own buffers to different intra-line
        // offsets — Recorder::remap preserves those offset bits, so
        // the recorded trace (and its cycle counts) would differ
        // from an unprofiled run. Bare clock reads allocate nothing.
        uint64_t build_t0 = profiler.enabled() ? prof::nowNs() : 0;
        Trace trace = buildTrace(opt);
        if (profiler.enabled())
            profiler.record("build_trace", build_t0, prof::nowNs(),
                            0);
        if (!opt.saveTrace.empty())
            writeTrace(trace, opt.saveTrace);

        if (opt.opmix)
            printOpMix(trace, opt.csv);
        if (opt.reuse)
            printReuse(trace, opt.csv);
        if (opt.hot)
            printHot(trace, opt.csv);

        CpuConfig cpu_cfg;
        cpu_cfg.lat = LatencyConfig::preset(parsePreset(opt.preset));

        // The baseline and memoized replays are independent; run them
        // as two executor jobs (--jobs 1 forces the serial path).
        SimResult base, memo;
        MemoBank bank = MemoBank::standard(opt.table);

        // Optional event tracing: hook the tracer onto every table so
        // the memoized replay streams hit/miss/insert/evict records
        // into the bounded ring (the baseline replay has no tables).
        std::optional<obs::EventTracer> tracer;
        if (!opt.traceEvents.empty() && !opt.noMemo) {
            tracer.emplace(size_t{1} << 16, opt.samplePeriod);
            for (Operation op : {Operation::IntMul, Operation::FpMul,
                                 Operation::FpDiv, Operation::FpSqrt,
                                 Operation::FpLog, Operation::FpSin,
                                 Operation::FpCos, Operation::FpExp})
                if (MemoTable *table = bank.table(op))
                    table->setHooks(&*tracer);
        }

        // Optional phase collection: one accumulator per table; the
        // replay below takes the scalar access path, whose lazy
        // boundary rule matches probeBlock's bit for bit.
        std::optional<obs::PhaseScope> phases;
        if (opt.phaseWindow > 0 && !opt.noMemo)
            phases.emplace(bank, opt.phaseWindow, opt.phasePerSet);

        // Optional stderr heartbeat: the model bumps the counter in
        // coarse batches; the display thread owns all clock reads.
        unsigned replays = opt.noMemo ? 1 : 2;
        std::optional<prof::Heartbeat> heartbeat;
        if (opt.progress) {
            heartbeat.emplace("replay",
                              static_cast<uint64_t>(trace.size()) *
                                  replays);
            cpu_cfg.progress = &heartbeat->counter();
        }
        CpuModel replay_cpu(cpu_cfg);

        exec::parallelFor(
            replays,
            [&](size_t i) {
                prof::ProfSpan span(i == 0 ? "baseline_replay"
                                           : "memo_replay");
                if (i == 0)
                    base = replay_cpu.run(trace);
                else
                    memo = replay_cpu.run(trace, &bank);
            },
            opt.jobs);
        if (heartbeat)
            heartbeat->stop();

        TextTable t({"metric", "value"});
        t.addRow({"instructions", TextTable::count(trace.size())});
        t.addRow({"processor", cpu_cfg.lat.name});
        t.addRow({"baseline cycles",
                  TextTable::count(base.totalCycles)});
        t.addRow({"L1 hit ratio", TextTable::ratio(base.l1.hitRatio())});
        t.addRow({"L2 hit ratio", TextTable::ratio(base.l2.hitRatio())});

        if (!opt.noMemo) {
            t.addRow({"MEMO-TABLE", opt.table.describe()});
            t.addRow({"memoized cycles",
                      TextTable::count(memo.totalCycles)});
            t.addRow({"speedup",
                      TextTable::fixed(
                          static_cast<double>(base.totalCycles) /
                              memo.totalCycles,
                          3)});
            for (Operation op : {Operation::IntMul, Operation::FpMul,
                                 Operation::FpDiv}) {
                auto it = memo.memo.find(op);
                if (it == memo.memo.end() || it->second.lookups == 0)
                    continue;
                t.addRow({std::string(operationName(op)) +
                              " hit ratio",
                          TextTable::ratio(it->second.hitRatio())});
            }
        }
        if (opt.csv)
            t.printCsv(std::cout);
        else
            t.print(std::cout);

        std::vector<obs::PhaseProfile> phase_profiles;
        if (phases) {
            phases->finalize();
            phase_profiles = phases->profiles();
            for (auto &p : phase_profiles)
                p.savedCyclesPerHit =
                    memoSavedPerHit(cpu_cfg.lat, p.op);
            std::string label = !opt.workload.empty() ? opt.workload
                                : !opt.pipeline.empty()
                                    ? opt.pipeline.front()
                                    : "trace";
            std::ofstream os(opt.phaseOut,
                             std::ios::binary | std::ios::trunc);
            if (!os)
                throw std::runtime_error("cannot write " +
                                         opt.phaseOut);
            os << obs::renderPhasesJson(phase_profiles, label);
            size_t windows = 0;
            for (const auto &p : phase_profiles)
                windows += p.rows.size();
            std::cout << "wrote " << opt.phaseOut << " (" << windows
                      << " phase windows of " << opt.phaseWindow
                      << " accesses)\n";
        }

        if (tracer) {
            std::ofstream events(opt.traceEvents,
                                 std::ios::binary | std::ios::trunc);
            if (!events)
                throw std::runtime_error("cannot write " +
                                         opt.traceEvents);
            if (phase_profiles.empty()) {
                tracer->exportChromeTrace(events);
            } else {
                // Instant table events and phase counter tracks on
                // one timeline, same conventions as
                // exportChromeTrace.
                events << "{\"traceEvents\": [";
                bool first = true;
                tracer->appendEventsJson(events, first);
                obs::appendCounterEventsJson(events, first,
                                             phase_profiles);
                events << "\n],\n\"metadata\": {\"offered\": "
                       << tracer->offered() << ", \"recorded\": "
                       << tracer->recorded() << ", \"dropped\": "
                       << tracer->dropped() << ", \"samplePeriod\": "
                       << opt.samplePeriod << ", \"phaseWindow\": "
                       << opt.phaseWindow << "}}\n";
            }
            std::cout << "wrote " << opt.traceEvents << " ("
                      << tracer->recorded() << " of "
                      << tracer->offered()
                      << " table events recorded)\n";
        }

        if (!opt.profileTrace.empty()) {
            // Host spans and (when traced) the simulated table events
            // on one chrome://tracing timeline; the host-side summary
            // goes to stderr so stdout stays identical to an
            // unprofiled run.
            obs::StatsRegistry host_stats;
            prof::publishProcessStats(host_stats, profiler);
            exec::ThreadPool::shared().publishUtilization(host_stats);
            exec::TraceCache::instance().publishStats(host_stats);

            std::ofstream os(opt.profileTrace,
                             std::ios::binary | std::ios::trunc);
            if (!os)
                throw std::runtime_error("cannot write " +
                                         opt.profileTrace);
            profiler.exportChromeTrace(os,
                                       tracer ? &*tracer : nullptr);
            std::cerr << "memo-sim: wrote " << opt.profileTrace
                      << " (" << profiler.size() << " host spans"
                      << (tracer ? ", +table events" : "") << ")\n"
                      << host_stats.snapshot().serialize();
        }

        if (!opt.statsFile.empty()) {
            std::ofstream stats(opt.statsFile);
            stats << "instructions=" << trace.size() << "\n"
                  << "baseline_cycles=" << base.totalCycles << "\n"
                  << "l1_hit_ratio=" << base.l1.hitRatio() << "\n"
                  << "l2_hit_ratio=" << base.l2.hitRatio() << "\n";
            // Reuse the already-computed results instead of replaying
            // the trace a third time.
            if (!opt.noMemo) {
                stats << "memo_cycles=" << memo.totalCycles << "\n"
                      << "speedup="
                      << static_cast<double>(base.totalCycles) /
                             memo.totalCycles
                      << "\n";
                for (Operation op :
                     {Operation::IntMul, Operation::FpMul,
                      Operation::FpDiv}) {
                    auto it = memo.memo.find(op);
                    if (it == memo.memo.end() ||
                        it->second.lookups == 0)
                        continue;
                    std::string key(operationName(op));
                    for (auto &ch : key)
                        if (ch == ' ')
                            ch = '_';
                    stats << key << "_hit_ratio="
                          << it->second.hitRatio() << "\n"
                          << key << "_lookups="
                          << it->second.lookups << "\n";
                }
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "memo-sim: %s\n", e.what());
        return 1;
    }
}
