/**
 * @file
 * memo-entropy-map: visualize the paper's windowed-entropy analysis.
 *
 * Usage:  memo-entropy-map IMAGE [window] [out.pgm]
 *   IMAGE   bundled image name or a .pgm/.ppm file
 *   window  tile size (default 8, the paper's finest granularity)
 *
 * Prints the full/16x16/8x8 entropies (the Table 8 columns) and
 * writes a per-window entropy heat map as a PGM image: bright tiles
 * are high-entropy regions where a MEMO-TABLE will miss, dark tiles
 * are the low-entropy regions it feeds on.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <map>

#include "img/entropy.hh"
#include "img/generate.hh"
#include "img/pnm.hh"

using namespace memo;

namespace
{

/** Entropy of one tile. */
double
tileEntropy(const Image &img, int x0, int y0, int window)
{
    std::map<int, uint64_t> hist;
    uint64_t n = 0;
    int x1 = std::min(x0 + window, img.width());
    int y1 = std::min(y0 + window, img.height());
    for (int y = y0; y < y1; y++) {
        for (int x = x0; x < x1; x++) {
            for (int b = 0; b < img.bands(); b++) {
                hist[static_cast<int>(img.at(x, y, b))]++;
                n++;
            }
        }
    }
    double e = 0.0;
    for (const auto &[v, c] : hist) {
        double p = static_cast<double>(c) / n;
        e -= p * std::log2(p);
    }
    return e;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: memo-entropy-map IMAGE [window] "
                     "[out.pgm]\n");
        return 1;
    }
    std::string name = argv[1];
    int window = argc > 2 ? std::atoi(argv[2]) : 8;
    std::string out_path = argc > 3 ? argv[3] : "entropy_map.pgm";

    try {
        Image img = (name.ends_with(".pgm") || name.ends_with(".ppm"))
                        ? readPnm(name)
                        : imageByName(name).image;
        if (img.type() == PixelType::Float) {
            std::fprintf(stderr, "FLOAT images have no histogram "
                                 "entropy (Table 8 prints '-')\n");
            return 1;
        }

        std::printf("%s: %dx%d %s, %d band(s)\n", name.c_str(),
                    img.width(), img.height(),
                    std::string(pixelTypeName(img.type())).c_str(),
                    img.bands());
        std::printf("entropy: full %.2f bits, 16x16 %.2f, 8x8 %.2f\n",
                    imageEntropy(img), windowEntropy(img, 16),
                    windowEntropy(img, 8));

        int tw = (img.width() + window - 1) / window;
        int th = (img.height() + window - 1) / window;
        Image map(tw, th, 1, PixelType::Byte);
        double max_bits = std::log2(
            static_cast<double>(window) * window * img.bands());
        for (int ty = 0; ty < th; ty++) {
            for (int tx = 0; tx < tw; tx++) {
                double e = tileEntropy(img, tx * window, ty * window,
                                       window);
                map.at(tx, ty) = static_cast<float>(
                    std::lround(255.0 * e / max_bits));
            }
        }
        map.quantize();
        writePnm(map, out_path);
        std::printf("%dx%d window-entropy map -> %s (bright = high "
                    "entropy = memo-hostile)\n",
                    tw, th, out_path.c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "memo-entropy-map: %s\n", e.what());
        return 1;
    }
}
