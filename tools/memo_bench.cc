/**
 * @file
 * memo-bench: registered host-performance scenarios and the
 * continuous-benchmarking regression gate.
 *
 * Where the bench_* binaries reproduce the paper's *simulated*
 * numbers, memo-bench times the *host*: how long the reproduction
 * machinery itself takes to replay a trace, run a table sweep, push a
 * fuzz batch and render a report. Each registered scenario runs
 * warmup + N timed repetitions; the robust summary (median and MAD)
 * is appended as one BenchRecord — with a full environment manifest —
 * to a schema-versioned history file (BENCH_history.json by default).
 *
 * `--check` turns the run into a gate: each scenario's fresh median
 * is compared against its most recent history record and the run
 * exits non-zero when any scenario exceeds
 * baseline + max(rel_slack * baseline, mad_k * MAD, abs floor);
 * see prof/bench_record.hh for the rationale. `--inject-slowdown X`
 * multiplies the measured samples by X before gating — the gate's
 * self-test — and suppresses the history append so synthetic numbers
 * never pollute the baseline.
 *
 * `--profile-trace FILE` enables the host profiler for the run and
 * writes every scenario repetition as Chrome-trace spans; the
 * trace-replay scenario additionally hooks an obs::EventTracer onto
 * its MEMO-TABLEs so simulated table events land on the same
 * timeline.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "check/fuzz.hh"
#include "core/bank.hh"
#include "exec/thread_pool.hh"
#include "exec/trace_cache.hh"
#include "img/generate.hh"
#include "obs/phase.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "obs/tracer.hh"
#include "prof/bench_record.hh"
#include "prof/prof.hh"
#include "sim/cpu.hh"
#include "workloads/workload.hh"

using namespace memo;

namespace
{

struct Options
{
    std::string suite = "quick";   //!< quick | full
    std::string only;              //!< run a single scenario
    std::string history = "BENCH_history.json";
    std::string profileTrace;      //!< Chrome-trace output path
    unsigned reps = 5;
    unsigned warmup = 1;
    unsigned jobs = 0;             //!< 0 = ThreadPool::defaultJobs()
    bool check = false;
    bool list = false;
    bool noAppend = false;
    double injectSlowdown = 0.0;   //!< 0 = off
    prof::GateOptions gate;
    /** --assert-ratio: require stat(num)/stat(den) >= min. */
    std::string ratioNum;
    std::string ratioDen;
    double ratioMin = 0.0;
    /**
     * --ratio-stat: how the asserted ratio is computed.
     * "median" (default) compares the scenarios' median wall times —
     * right for decisive margins. "min" compares min-of-reps, robust
     * when noise is one-sided (preemption only adds time). "paired"
     * takes the median of per-repetition ratios — the repetitions
     * interleave den/num, so host drift (frequency scaling, noisy
     * neighbors) cancels pair by pair; this is the estimator tight
     * margins like phase_overhead_gate's 3% need to hold on a busy
     * host.
     */
    std::string ratioStat = "median";
};

/** Shared state a scenario body can read; set up by the driver. */
struct BenchContext
{
    unsigned jobs = 1;
    obs::EventTracer *tracer = nullptr; //!< non-null under --profile-trace
    /** Per-rep scenario metrics, folded into BenchRecord::extra. */
    std::map<std::string, double> extra;
};

/**
 * One registered scenario: make() runs the untimed setup and returns
 * the body the driver times. Setup cost (trace generation, image
 * synthesis) is deliberately excluded so the gate watches steady-state
 * throughput, not first-touch warmup.
 */
struct Scenario
{
    std::string name;
    std::string description;
    bool quick; //!< in the quick suite (full runs everything)
    std::function<std::function<void(BenchContext &)>(BenchContext &)>
        make;
};

/** Hook @p tracer onto every table of @p bank (memo-sim's op list). */
void
hookTracer(MemoBank &bank, obs::EventTracer *tracer)
{
    if (!tracer)
        return;
    for (Operation op : {Operation::IntMul, Operation::FpMul,
                         Operation::FpDiv, Operation::FpSqrt,
                         Operation::FpLog, Operation::FpSin,
                         Operation::FpCos, Operation::FpExp})
        if (MemoTable *table = bank.table(op))
            table->setHooks(tracer);
}

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> all = { // NOLINT(memo-CONC-003)
        {"trace_replay",
         "batched memo-table replay of one cached kernel trace", true,
         [](BenchContext &) {
             auto trace = cachedMmKernelTrace(mmKernelByName("vcost"),
                                              imageByName("chroms"), 64);
             return [trace](BenchContext &ctx) {
                 MemoBank bank = MemoBank::standard(MemoConfig{});
                 hookTracer(bank, ctx.tracer);
                 replayMemo(*trace, bank);
                 ctx.extra["items"] =
                     static_cast<double>(trace->size());
             };
         }},
        // The phase-overhead pair: identical 8-replay bodies, one
        // bare and one with a PhaseScope attached at the default
        // window. A single replay of the standard trace takes ~2 ms,
        // which is too small to gate a 3% margin against scheduler
        // noise; the 8x loop puts the medians in a range where the
        // phase_overhead_gate ratio is stable. Both are ratio-only
        // scenarios (never in a suite), so the loop does not skew any
        // history baseline.
        {"trace_replay_phase_off",
         "8x batched replay, no telemetry (the overhead gate's "
         "denominator)", false,
         [](BenchContext &) {
             auto trace = cachedMmKernelTrace(mmKernelByName("vcost"),
                                              imageByName("chroms"), 64);
             return [trace](BenchContext &ctx) {
                 for (int i = 0; i < 8; i++) {
                     MemoBank bank = MemoBank::standard(MemoConfig{});
                     hookTracer(bank, ctx.tracer);
                     replayMemo(*trace, bank);
                 }
                 ctx.extra["items"] =
                     static_cast<double>(8 * trace->size());
             };
         }},
        {"trace_replay_phase",
         "8x batched replay with memo-scope phase telemetry attached "
         "at the default window (the overhead gate's numerator)",
         false,
         [](BenchContext &) {
             auto trace = cachedMmKernelTrace(mmKernelByName("vcost"),
                                              imageByName("chroms"), 64);
             return [trace](BenchContext &ctx) {
                 size_t rows = 0;
                 for (int i = 0; i < 8; i++) {
                     MemoBank bank = MemoBank::standard(MemoConfig{});
                     hookTracer(bank, ctx.tracer);
                     obs::PhaseScope phases(bank, 2048, true);
                     replayMemo(*trace, bank);
                     phases.finalize();
                     for (const obs::PhaseProfile &p :
                          phases.profiles())
                         rows += p.rows.size();
                 }
                 ctx.extra["items"] =
                     static_cast<double>(8 * trace->size());
                 ctx.extra["phaseRows"] = static_cast<double>(rows);
             };
         }},
        {"trace_replay_reference",
         "scalar reference replay of the same trace (the batched "
         "path's oracle)", false,
         [](BenchContext &) {
             auto trace = cachedMmKernelTrace(mmKernelByName("vcost"),
                                              imageByName("chroms"), 64);
             return [trace](BenchContext &ctx) {
                 MemoBank bank = MemoBank::standard(MemoConfig{});
                 replayMemoReference(*trace, bank);
                 ctx.extra["items"] =
                     static_cast<double>(trace->size());
             };
         }},
        {"cpu_replay",
         "memoized CpuModel replay of one cached kernel trace", true,
         [](BenchContext &) {
             auto trace = cachedMmKernelTrace(mmKernelByName("vcost"),
                                              imageByName("chroms"), 64);
             return [trace](BenchContext &ctx) {
                 MemoBank bank = MemoBank::standard(MemoConfig{});
                 hookTracer(bank, ctx.tracer);
                 CpuModel cpu;
                 SimResult r = cpu.run(*trace, &bank);
                 ctx.extra["items"] =
                     static_cast<double>(trace->size());
                 ctx.extra["cycles"] =
                     static_cast<double>(r.totalCycles);
             };
         }},
        {"memo_sweep",
         "parallel table-geometry sweep over one Figure 3 kernel", true,
         [](BenchContext &ctx) {
             std::vector<MemoConfig> cfgs;
             for (unsigned entries : {8u, 32u, 128u, 512u}) {
                 MemoConfig cfg;
                 cfg.entries = entries;
                 cfgs.push_back(cfg);
             }
             // Warm the shared trace cache so the timed body measures
             // sweep execution, not generation.
             measureMmKernelConfigs(mmKernelByName(sweepKernelNames()[0]),
                                    cfgs, 64, ctx.jobs);
             return [cfgs](BenchContext &c) {
                 auto hits = measureMmKernelConfigs(
                     mmKernelByName(sweepKernelNames()[0]), cfgs, 64,
                     c.jobs);
                 if (hits.size() != cfgs.size())
                     throw std::runtime_error("sweep size mismatch");
                 c.extra["items"] = static_cast<double>(cfgs.size());
             };
         }},
        {"fuzz_batch",
         "seeded differential fuzz campaign (150 cases)", true,
         [](BenchContext &) {
             return [](BenchContext &ctx) {
                 check::FuzzOptions o;
                 o.seed = 1;
                 o.iters = 150;
                 o.streamLen = 128;
                 if (auto f = check::fuzz(o, nullptr))
                     throw std::runtime_error(
                         "fuzz failure during benchmark: " + f->what);
                 ctx.extra["items"] = static_cast<double>(o.iters);
             };
         }},
        {"report_render",
         "Markdown + HTML rendering of a synthetic report", true,
         [](BenchContext &) {
             auto report = std::make_shared<obs::Report>();
             report->title = "memo-bench synthetic report";
             report->preamble = {"Render-throughput fixture."};
             for (int s = 0; s < 8; s++) {
                 obs::ReportSection sec;
                 sec.title = "Section " + std::to_string(s);
                 sec.anchor = "sec-" + std::to_string(s);
                 sec.prose = {"Synthetic prose paragraph for render "
                              "timing; contents are immaterial."};
                 obs::ReportTable t;
                 t.header = {"kernel", "intMul", "fpMul", "fpDiv",
                             "cycles", "speedup"};
                 for (int r = 0; r < 24; r++)
                     t.rows.push_back({"k" + std::to_string(r), "0.81",
                                       "0.64", "0.77", "123456789",
                                       "1.21"});
                 sec.tables.push_back(t);
                 sec.claims.push_back(
                     {"synthetic claim " + std::to_string(s), true,
                      "fixture"});
                 report->sections.push_back(std::move(sec));
             }
             return [report](BenchContext &ctx) {
                 size_t bytes = obs::renderMarkdown(*report).size() +
                                obs::renderHtml(*report).size();
                 if (bytes == 0)
                     throw std::runtime_error("empty render");
                 ctx.extra["items"] =
                     static_cast<double>(report->sections.size());
                 ctx.extra["renderedBytes"] =
                     static_cast<double>(bytes);
             };
         }},
        {"trace_gen",
         "uncached trace generation for one (kernel, image) pair",
         false,
         [](BenchContext &) {
             return [](BenchContext &ctx) {
                 Trace t = traceMmKernel(mmKernelByName("vcost"),
                                         imageByName("chroms").image,
                                         64);
                 ctx.extra["items"] = static_cast<double>(t.size());
             };
         }},
        {"trace_spill_replay",
         "streamed replay of one spilled (chunk-encoded, on-disk) "
         "kernel trace", true,
         [](BenchContext &) {
             // Spill-pressure scenario: setup encodes the trace into
             // a chunk store under the system temp dir (dedup makes
             // reruns cheap); the timed body decodes the operand
             // chunks and replays them through probeBlock without
             // ever materializing the trace (docs/TRACE_FORMAT.md).
             auto trace = cachedMmKernelTrace(mmKernelByName("vcost"),
                                              imageByName("chroms"), 64);
             auto store = std::make_shared<SpillStore>(
                 (std::filesystem::temp_directory_path() /
                  "memo-bench-spill")
                     .string());
             const std::string key = "vcost|chroms|64";
             SpillStore::WriteStats ws = store->write(key, *trace);
             double encoded = static_cast<double>(ws.bytesWritten +
                                                  ws.bytesShared);
             double raw = static_cast<double>(trace->memoryBytes());
             size_t records = trace->size();
             return [store, key, encoded, raw,
                     records](BenchContext &ctx) {
                 MemoBank bank = MemoBank::standard(MemoConfig{});
                 hookTracer(bank, ctx.tracer);
                 replayMemoStreamed(*store, key, bank);
                 ctx.extra["items"] = static_cast<double>(records);
                 ctx.extra["encodedBytes"] = encoded;
                 ctx.extra["rawBytes"] = raw;
             };
         }},
    };
    return all;
}

void
usage(std::ostream &os)
{
    os << "usage: memo-bench [options]\n"
          "  --suite quick|full     scenario set (default quick)\n"
          "  --scenario NAME        run one scenario only\n"
          "  --list                 list scenarios and exit\n"
          "  --reps N               timed repetitions (default 5)\n"
          "  --warmup N             discarded repetitions (default 1)\n"
          "  --jobs N               worker threads (default auto)\n"
          "  --trace-cache-budget MB  resident budget of the shared\n"
          "                         trace cache (default 768)\n"
          "  --trace-spill-dir DIR  spill evicted traces to a chunk\n"
          "                         store under DIR; admitted back on\n"
          "                         miss (docs/TRACE_FORMAT.md)\n"
          "  --history FILE         BENCH_history.json path\n"
          "  --check                gate against the history; exit 1\n"
          "                         on a regression\n"
          "  --inject-slowdown X    multiply samples by X (gate\n"
          "                         self-test; implies no append)\n"
          "  --assert-ratio A B R   also run scenarios A and B and\n"
          "                         fail unless stat(A)/stat(B)\n"
          "                         >= R (throughput-ratio gate)\n"
          "  --ratio-stat S         how the ratio is computed: median\n"
          "                         (default), min (robust one-sided\n"
          "                         noise), or paired (median of\n"
          "                         per-rep den/num ratios over the\n"
          "                         interleaved reps; host drift\n"
          "                         cancels pair by pair — use for\n"
          "                         tight margins)\n"
          "  --no-append            measure/gate without writing\n"
          "  --rel-slack F          gate band fraction (default 0.30)\n"
          "  --mad-k F              gate MAD multiple (default 5.0)\n"
          "  --abs-floor SEC        gate band floor (default 0.005)\n"
          "  --profile-trace FILE   enable host profiling; write a\n"
          "                         Chrome trace of the run\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            throw std::runtime_error(std::string(argv[i]) +
                                     " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--suite")
            opt.suite = need(i);
        else if (a == "--scenario")
            opt.only = need(i);
        else if (a == "--list")
            opt.list = true;
        else if (a == "--reps")
            opt.reps = static_cast<unsigned>(std::atoi(need(i)));
        else if (a == "--warmup")
            opt.warmup = static_cast<unsigned>(std::atoi(need(i)));
        else if (a == "--jobs")
            opt.jobs = static_cast<unsigned>(std::atoi(need(i)));
        else if (a == "--trace-cache-budget") {
            long long mb = std::atoll(need(i));
            if (mb <= 0)
                throw std::runtime_error(
                    "--trace-cache-budget needs a positive MB count");
            exec::TraceCache::instance().setBudgetBytes(
                static_cast<size_t>(mb) * 1024 * 1024);
        } else if (a == "--trace-spill-dir")
            exec::TraceCache::instance().setSpillDir(need(i));
        else if (a == "--history")
            opt.history = need(i);
        else if (a == "--check")
            opt.check = true;
        else if (a == "--inject-slowdown")
            opt.injectSlowdown = std::atof(need(i));
        else if (a == "--assert-ratio") {
            opt.ratioNum = need(i);
            opt.ratioDen = need(i);
            opt.ratioMin = std::atof(need(i));
            if (opt.ratioMin <= 0)
                throw std::runtime_error(
                    "--assert-ratio minimum must be positive");
        }
        else if (a == "--ratio-stat") {
            opt.ratioStat = need(i);
            if (opt.ratioStat != "median" && opt.ratioStat != "min" &&
                opt.ratioStat != "paired")
                throw std::runtime_error(
                    "--ratio-stat must be median, min or paired");
        }
        else if (a == "--no-append")
            opt.noAppend = true;
        else if (a == "--rel-slack")
            opt.gate.relSlack = std::atof(need(i));
        else if (a == "--mad-k")
            opt.gate.madK = std::atof(need(i));
        else if (a == "--abs-floor")
            opt.gate.absFloorSec = std::atof(need(i));
        else if (a == "--profile-trace")
            opt.profileTrace = need(i);
        else if (a == "--help" || a == "-h") {
            usage(std::cout);
            return false;
        } else {
            throw std::runtime_error("unknown option " + a);
        }
    }
    if (opt.suite != "quick" && opt.suite != "full")
        throw std::runtime_error("--suite must be quick or full");
    if (opt.reps == 0)
        throw std::runtime_error("--reps must be positive");
    return true;
}

/** Run @p sc and return its summarized record. */
prof::BenchRecord
runScenario(const Scenario &sc, const Options &opt,
            obs::EventTracer *tracer)
{
    BenchContext ctx;
    ctx.jobs = opt.jobs ? opt.jobs : exec::ThreadPool::defaultJobs();
    ctx.tracer = tracer;

    auto body = sc.make(ctx);

    for (unsigned i = 0; i < opt.warmup; i++) {
        prof::ProfSpan span(sc.name + ":warmup");
        body(ctx);
    }

    prof::BenchRecord r;
    r.scenario = sc.name;
    r.suite = opt.suite;
    r.reps = opt.reps;
    r.warmup = opt.warmup;
    r.jobs = ctx.jobs;
    for (unsigned i = 0; i < opt.reps; i++) {
        uint64_t t0 = prof::nowNs();
        {
            prof::ProfSpan span(sc.name);
            body(ctx);
        }
        double sec =
            static_cast<double>(prof::nowNs() - t0) / 1e9;
        if (opt.injectSlowdown > 0)
            sec *= opt.injectSlowdown;
        r.samplesSec.push_back(sec);
    }
    prof::summarizeSamples(r);
    r.extra = ctx.extra;
    if (r.medianSec > 0) {
        auto it = ctx.extra.find("items");
        if (it != ctx.extra.end())
            r.extra["itemsPerSec"] = it->second / r.medianSec;
        it = ctx.extra.find("cycles");
        if (it != ctx.extra.end())
            r.extra["cyclesPerSec"] = it->second / r.medianSec;
    }
    r.env = prof::EnvManifest::collect();
    return r;
}

/**
 * Run the --assert-ratio pair with interleaved repetitions: the
 * denominator and numerator bodies alternate rep by rep, so slow
 * host drift (frequency scaling, a noisy neighbor) lands on both
 * scenarios equally instead of on whichever happened to run second.
 * For a decisive margin like replay_speed_gate's 2x that is a
 * nicety; for phase_overhead_gate's 3% it is the difference between
 * a gate that holds and one that flakes.
 */
std::pair<prof::BenchRecord, prof::BenchRecord>
runScenarioPair(const Scenario &num, const Scenario &den,
                const Options &opt, obs::EventTracer *tracer)
{
    BenchContext ctx_num, ctx_den;
    ctx_num.jobs = opt.jobs ? opt.jobs : exec::ThreadPool::defaultJobs();
    ctx_den.jobs = ctx_num.jobs;
    ctx_num.tracer = tracer;
    ctx_den.tracer = tracer;

    auto body_num = num.make(ctx_num);
    auto body_den = den.make(ctx_den);

    for (unsigned i = 0; i < opt.warmup; i++) {
        {
            prof::ProfSpan span(den.name + ":warmup");
            body_den(ctx_den);
        }
        {
            prof::ProfSpan span(num.name + ":warmup");
            body_num(ctx_num);
        }
    }

    auto init = [&](const Scenario &sc) {
        prof::BenchRecord r;
        r.scenario = sc.name;
        r.suite = opt.suite;
        r.reps = opt.reps;
        r.warmup = opt.warmup;
        r.jobs = ctx_num.jobs;
        return r;
    };
    prof::BenchRecord r_num = init(num), r_den = init(den);

    auto timeOne = [&](const Scenario &sc,
                       std::function<void(BenchContext &)> &body,
                       BenchContext &ctx, prof::BenchRecord &r) {
        uint64_t t0 = prof::nowNs();
        {
            prof::ProfSpan span(sc.name);
            body(ctx);
        }
        double sec = static_cast<double>(prof::nowNs() - t0) / 1e9;
        if (opt.injectSlowdown > 0)
            sec *= opt.injectSlowdown;
        r.samplesSec.push_back(sec);
    };
    for (unsigned i = 0; i < opt.reps; i++) {
        timeOne(den, body_den, ctx_den, r_den);
        timeOne(num, body_num, ctx_num, r_num);
    }

    auto finish = [&](prof::BenchRecord &r, BenchContext &ctx) {
        prof::summarizeSamples(r);
        r.extra = ctx.extra;
        if (r.medianSec > 0) {
            auto it = ctx.extra.find("items");
            if (it != ctx.extra.end())
                r.extra["itemsPerSec"] = it->second / r.medianSec;
            it = ctx.extra.find("cycles");
            if (it != ctx.extra.end())
                r.extra["cyclesPerSec"] = it->second / r.medianSec;
        }
        r.env = prof::EnvManifest::collect();
    };
    finish(r_num, ctx_num);
    finish(r_den, ctx_den);
    return {std::move(r_num), std::move(r_den)};
}

void
printGateTable(const std::vector<prof::GateRow> &rows, std::ostream &os)
{
    os << "\nscenario          baseline   current  threshold    delta  "
          "verdict\n";
    char line[160];
    for (const auto &g : rows) {
        if (g.isNew) {
            std::snprintf(line, sizeof line,
                          "%-16s %9s %9.4fs %10s %8s  NEW\n",
                          g.scenario.c_str(), "-", g.currentSec, "-",
                          "-");
        } else {
            std::snprintf(line, sizeof line,
                          "%-16s %8.4fs %8.4fs %9.4fs %+7.1f%%  %s\n",
                          g.scenario.c_str(), g.baselineSec,
                          g.currentSec, g.thresholdSec, g.deltaPct,
                          g.regressed ? "REGRESSED" : "ok");
        }
        os << line;
    }
}

int
run(const Options &opt)
{
    if (opt.list) {
        for (const auto &sc : scenarios())
            std::cout << sc.name << (sc.quick ? "  [quick] " : "  [full]  ")
                      << sc.description << "\n";
        return 0;
    }

    std::optional<obs::EventTracer> tracer;
    if (!opt.profileTrace.empty()) {
        prof::Profiler::global().setEnabled(true);
        tracer.emplace(size_t{1} << 16, 64);
    }

    auto printSummary = [](const prof::BenchRecord &r) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "  median %.4fs  mad %.4fs  min %.4fs  max %.4fs\n",
                      r.medianSec, r.madSec, r.minSec, r.maxSec);
        std::cout << line;
    };

    std::vector<prof::BenchRecord> current;
    for (const auto &sc : scenarios()) {
        // Scenarios named by --assert-ratio always run — but in the
        // interleaved paired pass below, never in this loop, even
        // when the suite or --scenario filter selects them.
        bool forRatio = !opt.ratioNum.empty() &&
                        (sc.name == opt.ratioNum ||
                         sc.name == opt.ratioDen);
        if (forRatio)
            continue;
        if (!opt.only.empty() && sc.name != opt.only)
            continue;
        if (opt.only.empty() && opt.suite == "quick" && !sc.quick)
            continue;
        std::cout << "[memo-bench] " << sc.name << " (" << opt.reps
                  << " reps, " << opt.warmup << " warmup)...\n";
        prof::BenchRecord r = runScenario(sc, opt,
                                          tracer ? &*tracer : nullptr);
        printSummary(r);
        current.push_back(std::move(r));
    }
    if (!opt.ratioNum.empty()) {
        auto find = [](const std::string &name) -> const Scenario & {
            for (const auto &sc : scenarios())
                if (sc.name == name)
                    return sc;
            throw std::runtime_error(
                "--assert-ratio: unknown scenario " + name);
        };
        const Scenario &num = find(opt.ratioNum);
        const Scenario &den = find(opt.ratioDen);
        std::cout << "[memo-bench] " << den.name << " / " << num.name
                  << " interleaved (" << opt.reps << " reps, "
                  << opt.warmup << " warmup)...\n";
        auto pair = runScenarioPair(num, den, opt,
                                    tracer ? &*tracer : nullptr);
        printSummary(pair.second);
        printSummary(pair.first);
        current.push_back(std::move(pair.second));
        current.push_back(std::move(pair.first));
    }
    if (current.empty())
        throw std::runtime_error(
            opt.only.empty() ? "no scenarios selected"
                             : "unknown scenario " + opt.only);

    std::vector<prof::BenchRecord> history;
    std::string error;
    if (!prof::readBenchFile(opt.history, history, error))
        throw std::runtime_error(opt.history + ": " + error);

    bool regressed = false;
    if (opt.check) {
        auto rows = prof::gateCompare(history, current, opt.gate);
        printGateTable(rows, std::cout);
        for (const auto &g : rows)
            regressed = regressed || g.regressed;
    }

    // Synthetic (injected) samples never enter the baseline.
    if (!opt.noAppend && opt.injectSlowdown <= 0) {
        history.insert(history.end(), current.begin(), current.end());
        if (!prof::writeBenchFile(opt.history, history))
            throw std::runtime_error("cannot write " + opt.history);
        std::cout << "\nappended " << current.size() << " record"
                  << (current.size() == 1 ? "" : "s") << " to "
                  << opt.history << " (" << history.size()
                  << " total)\n";
    }

    if (tracer) {
        // Fold the run's host counters into the global registry and
        // export spans + table events onto one timeline.
        auto &reg = obs::StatsRegistry::global();
        prof::publishProcessStats(reg, prof::Profiler::global());
        exec::ThreadPool::shared().publishUtilization(reg);
        exec::TraceCache::instance().publishStats(reg);
        std::ofstream os(opt.profileTrace,
                         std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write " +
                                     opt.profileTrace);
        prof::Profiler::global().exportChromeTrace(os, &*tracer);
        std::cout << "wrote " << opt.profileTrace << " ("
                  << prof::Profiler::global().size() << " host spans, "
                  << tracer->recorded() << " table events)\n";
    }

    // Throughput-ratio gate: the numerator scenario's wall time must
    // be at least ratioMin times the denominator's, under the
    // estimator --ratio-stat picks (see Options::ratioStat).
    bool ratioFailed = false;
    if (!opt.ratioNum.empty()) {
        auto recordOf =
            [&](const std::string &name) -> const prof::BenchRecord & {
            for (const auto &r : current)
                if (r.scenario == name)
                    return r;
            throw std::runtime_error("--assert-ratio: scenario " +
                                     name + " not measured");
        };
        const prof::BenchRecord &rn = recordOf(opt.ratioNum);
        const prof::BenchRecord &rd = recordOf(opt.ratioDen);
        double ratio = 0.0;
        if (opt.ratioStat == "paired") {
            // Median of per-repetition ratios: repetition k of both
            // scenarios ran back to back, so whatever the host was
            // doing that instant divides out.
            std::vector<double> ratios;
            size_t m = std::min(rn.samplesSec.size(),
                                rd.samplesSec.size());
            for (size_t k = 0; k < m; k++)
                if (rd.samplesSec[k] > 0)
                    ratios.push_back(rn.samplesSec[k] /
                                     rd.samplesSec[k]);
            std::sort(ratios.begin(), ratios.end());
            size_t c = ratios.size();
            if (c > 0)
                ratio = c % 2 ? ratios[c / 2]
                              : (ratios[c / 2 - 1] + ratios[c / 2]) /
                                    2.0;
        } else {
            double num = opt.ratioStat == "min" ? rn.minSec
                                                : rn.medianSec;
            double den = opt.ratioStat == "min" ? rd.minSec
                                                : rd.medianSec;
            ratio = den > 0 ? num / den : 0.0;
        }
        char line[200];
        std::snprintf(line, sizeof line,
                      "\nratio %s / %s = %.2fx (required >= %.2fx)\n",
                      opt.ratioNum.c_str(), opt.ratioDen.c_str(), ratio,
                      opt.ratioMin);
        std::cout << line;
        ratioFailed = ratio < opt.ratioMin;
    }

    if (opt.check && regressed) {
        std::cout << "\nFAIL: performance regression detected\n";
        return 1;
    }
    if (ratioFailed) {
        std::cout << "FAIL: throughput ratio below required minimum\n";
        return 1;
    }
    if (opt.check)
        std::cout << "\nOK: no performance regression\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        Options opt;
        if (!parseArgs(argc, argv, opt))
            return 0;
        return run(opt);
    } catch (const std::exception &e) {
        std::cerr << "memo-bench: " << e.what() << "\n";
        usage(std::cerr);
        return 2;
    }
}
