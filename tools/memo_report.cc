/**
 * @file
 * Self-rendering experiment report driver.
 *
 *   memo-report --write DIR    # measure everything and rewrite
 *                              # DIR/EXPERIMENTS.md and
 *                              # DIR/docs/REPORT.html
 *   memo-report --check DIR    # re-render and diff against the
 *                              # committed artifacts (exit 1 on drift)
 *   memo-report --markdown     # render EXPERIMENTS.md to stdout
 *   memo-report --html         # render REPORT.html to stdout
 *
 * The report runs the same check::measure* entry points the bench_*
 * binaries and the golden snapshots use, so its numbers agree with
 * both by construction. Rendering is deterministic (no timestamps or
 * locale formatting), which is what lets the `report_drift` ctest
 * treat EXPERIMENTS.md like a golden file: any code change that moves
 * a reproduced paper value fails --check until the artifacts are
 * regenerated with --write and committed.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/report.hh"
#include "exec/trace_cache.hh"
#include "obs/report.hh"
#include "obs/stats.hh"

namespace
{

struct Artifact
{
    const char *path; //!< repo-relative
    std::string (*render)(const memo::obs::Report &);
};

const Artifact artifacts[] = {
    {"EXPERIMENTS.md", memo::obs::renderMarkdown},
    {"docs/REPORT.html", memo::obs::renderHtml},
};

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

/** Print a minimal line diff of committed vs re-rendered. */
void
printDiff(const std::string &name, const std::string &want,
          const std::string &got)
{
    auto w = lines(want);
    auto g = lines(got);
    size_t n = std::max(w.size(), g.size());
    unsigned shown = 0;
    for (size_t i = 0; i < n && shown < 20; i++) {
        const std::string *wl = i < w.size() ? &w[i] : nullptr;
        const std::string *gl = i < g.size() ? &g[i] : nullptr;
        if (wl && gl && *wl == *gl)
            continue;
        if (wl)
            std::cout << "  -" << name << ":" << (i + 1) << ": " << *wl
                      << "\n";
        if (gl)
            std::cout << "  +" << name << ":" << (i + 1) << ": " << *gl
                      << "\n";
        shown++;
    }
    if (shown == 20)
        std::cout << "  ... (more differences suppressed)\n";
}

int
usage(int code)
{
    (code ? std::cerr : std::cout)
        << "usage: memo-report --write DIR | --check DIR | --markdown "
           "| --html\n";
    return code;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string mode, dir;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--markdown") ||
            !std::strcmp(argv[i], "--html")) {
            mode = argv[i] + 2;
        } else if (!std::strcmp(argv[i], "--write") ||
                   !std::strcmp(argv[i], "--check")) {
            mode = argv[i] + 2;
            if (i + 1 >= argc) {
                std::cerr << "memo-report: " << argv[i]
                          << " needs the repository root\n";
                return 2;
            }
            dir = argv[++i];
        } else {
            return usage(std::strcmp(argv[i], "--help") &&
                                 std::strcmp(argv[i], "-h")
                             ? 2
                             : 0);
        }
    }
    if (mode.empty())
        return usage(2);

    memo::obs::Report report = memo::check::buildExperimentsReport();

    if (mode == "markdown") {
        std::cout << memo::obs::renderMarkdown(report);
        return 0;
    }
    if (mode == "html") {
        std::cout << memo::obs::renderHtml(report);
        return 0;
    }

    bool ok = true;
    for (const Artifact &a : artifacts) {
        std::string path = dir + "/" + a.path;
        std::string current = a.render(report);

        if (mode == "write") {
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out) {
                std::cerr << "memo-report: cannot write " << path
                          << "\n";
                return 2;
            }
            out << current;
            std::cout << "wrote " << path << "\n";
            continue;
        }

        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cout << "MISSING " << path
                      << " (run memo-report --write)\n";
            ok = false;
            continue;
        }
        std::ostringstream committed;
        committed << in.rdbuf();
        if (committed.str() == current) {
            std::cout << "ok " << a.path << "\n";
        } else {
            std::cout << "DRIFT " << a.path
                      << ": committed report disagrees with measured "
                         "values\n";
            printDiff(a.path, committed.str(), current);
            ok = false;
        }
    }
    // Trace-cache effectiveness of the measurement run, via the same
    // gauges the profiler publishes (exec.traceCache.*). Write/check
    // stdout is operator-facing, so this never touches the rendered
    // artifacts (whose bytes --check just compared).
    auto &cache = memo::exec::TraceCache::instance();
    memo::obs::StatsRegistry cache_stats;
    cache.publishStats(cache_stats);
    auto snap = cache_stats.snapshot();
    std::cout << "trace cache: "
              << snap.gauges["exec.traceCache.hits"] << " hits, "
              << snap.gauges["exec.traceCache.misses"] << " misses, "
              << snap.gauges["exec.traceCache.evictions"]
              << " evictions, "
              << snap.gauges["exec.traceCache.residentBytes"] /
                     (1024 * 1024)
              << " MiB resident\n";

    if (!ok)
        std::cout << "report drift: if the change is intended, "
                     "regenerate with\n  memo-report --write "
                  << (dir.empty() ? "." : dir) << "\n";
    return ok ? 0 : 1;
}
