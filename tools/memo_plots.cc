/**
 * @file
 * memo-plots: emit gnuplot data and scripts for the paper's figures.
 *
 * Usage:  memo-plots [output-dir]      (default: ./plots)
 *
 * Writes fig2.dat/fig3.dat/fig4.dat plus matching .gp scripts; then
 * `gnuplot fig3.gp` renders the figure. The numbers are the same ones
 * bench_fig2/3/4 print.
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/experiment.hh"
#include "analysis/lmfit.hh"
#include "img/entropy.hh"
#include "img/generate.hh"
#include "workloads/workload.hh"

using namespace memo;

namespace
{

constexpr int crop = 96;

void
emitFig3(const std::filesystem::path &dir)
{
    std::vector<unsigned> sizes = {8,   16,  32,   64,   128, 256,
                                   512, 1024, 2048, 4096, 8192};
    std::vector<MemoConfig> cfgs;
    for (unsigned entries : sizes) {
        MemoConfig cfg;
        cfg.entries = entries;
        cfg.ways = 4;
        cfgs.push_back(cfg);
    }

    std::vector<std::vector<UnitHits>> all;
    for (const auto &name : sweepKernelNames())
        all.push_back(measureMmKernelConfigs(mmKernelByName(name),
                                             cfgs, crop));

    std::ofstream dat(dir / "fig3.dat");
    dat << "# entries div_avg div_min div_max mul_avg mul_min "
           "mul_max\n";
    for (size_t s = 0; s < sizes.size(); s++) {
        double stats[2][3] = {{0, 1, 0}, {0, 1, 0}}; // {sum, min, max}
        int n[2] = {0, 0};
        for (const auto &per_kernel : all) {
            double vals[2] = {per_kernel[s].fpDiv,
                              per_kernel[s].fpMul};
            for (int u = 0; u < 2; u++) {
                if (vals[u] < 0)
                    continue;
                stats[u][0] += vals[u];
                stats[u][1] = std::min(stats[u][1], vals[u]);
                stats[u][2] = std::max(stats[u][2], vals[u]);
                n[u]++;
            }
        }
        dat << sizes[s];
        for (int u = 0; u < 2; u++)
            dat << " " << stats[u][0] / n[u] << " " << stats[u][1]
                << " " << stats[u][2];
        dat << "\n";
    }

    std::ofstream gp(dir / "fig3.gp");
    gp << "set terminal png size 800,500\n"
          "set output 'fig3.png'\n"
          "set logscale x 2\n"
          "set xlabel 'MEMO-TABLE entries (4-way)'\n"
          "set ylabel 'hit ratio'\n"
          "set yrange [0:1]\n"
          "set key bottom right\n"
          "plot 'fig3.dat' using 1:2:3:4 with yerrorlines "
          "title 'fp division', \\\n"
          "     'fig3.dat' using 1:5:6:7 with yerrorlines "
          "title 'fp multiplication'\n";
}

void
emitFig4(const std::filesystem::path &dir)
{
    std::vector<unsigned> assocs = {1, 2, 4, 8};
    std::vector<MemoConfig> cfgs;
    for (unsigned ways : assocs) {
        MemoConfig cfg;
        cfg.entries = 32;
        cfg.ways = ways;
        cfgs.push_back(cfg);
    }
    std::vector<std::vector<UnitHits>> all;
    for (const auto &name : sweepKernelNames())
        all.push_back(measureMmKernelConfigs(mmKernelByName(name),
                                             cfgs, crop));

    std::ofstream dat(dir / "fig4.dat");
    dat << "# ways div_avg div_min div_max mul_avg mul_min mul_max\n";
    for (size_t s = 0; s < assocs.size(); s++) {
        double stats[2][3] = {{0, 1, 0}, {0, 1, 0}};
        int n[2] = {0, 0};
        for (const auto &per_kernel : all) {
            double vals[2] = {per_kernel[s].fpDiv,
                              per_kernel[s].fpMul};
            for (int u = 0; u < 2; u++) {
                if (vals[u] < 0)
                    continue;
                stats[u][0] += vals[u];
                stats[u][1] = std::min(stats[u][1], vals[u]);
                stats[u][2] = std::max(stats[u][2], vals[u]);
                n[u]++;
            }
        }
        dat << assocs[s];
        for (int u = 0; u < 2; u++)
            dat << " " << stats[u][0] / n[u] << " " << stats[u][1]
                << " " << stats[u][2];
        dat << "\n";
    }

    std::ofstream gp(dir / "fig4.gp");
    gp << "set terminal png size 800,500\n"
          "set output 'fig4.png'\n"
          "set logscale x 2\n"
          "set xlabel 'associativity (32 entries)'\n"
          "set ylabel 'hit ratio'\n"
          "set yrange [0:1]\n"
          "set key bottom right\n"
          "plot 'fig4.dat' using 1:2:3:4 with yerrorlines "
          "title 'fp division', \\\n"
          "     'fig4.dat' using 1:5:6:7 with yerrorlines "
          "title 'fp multiplication'\n";
}

void
emitFig2(const std::filesystem::path &dir)
{
    MemoConfig cfg;
    std::ofstream dat(dir / "fig2.dat");
    dat << "# image entropy_full entropy_8x8 mul_hit div_hit\n";

    std::vector<double> e8s, divs;
    for (const auto &ni : standardImages()) {
        double ef = imageEntropy(ni.image);
        double e8 = windowEntropy(ni.image, 8);
        if (std::isnan(ef))
            continue;
        MemoBank bank = MemoBank::standard(cfg);
        for (const auto &k : mmKernels()) {
            if (k.name == "vsqrt")
                continue;
            Trace trace = traceMmKernel(k, ni.image, crop);
            bank.table(Operation::FpMul)->flush();
            bank.table(Operation::FpDiv)->flush();
            replayMemo(trace, bank);
        }
        double mul_hr = bank.table(Operation::FpMul)->stats()
                            .hitRatio();
        double div_hr = bank.table(Operation::FpDiv)->stats()
                            .hitRatio();
        dat << ni.name << " " << ef << " " << e8 << " " << mul_hr
            << " " << div_hr << "\n";
        e8s.push_back(e8);
        divs.push_back(div_hr);
    }

    FitResult fit = fitLine(e8s, divs);
    std::ofstream gp(dir / "fig2.gp");
    gp << "set terminal png size 800,500\n"
          "set output 'fig2.png'\n"
          "set xlabel '8x8 window entropy (bits)'\n"
          "set ylabel 'fp division hit ratio'\n"
          "set yrange [0:1]\n"
       << "f(x) = " << fit.params[0] << " + (" << fit.params[1]
       << ")*x\n"
          "plot 'fig2.dat' using 3:5 with points pt 7 "
          "title 'images', f(x) title 'ML best fit'\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::filesystem::path dir = argc > 1 ? argv[1] : "plots";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "memo-plots: cannot create %s\n",
                     dir.string().c_str());
        return 1;
    }
    std::printf("emitting Figure 2 data...\n");
    emitFig2(dir);
    std::printf("emitting Figure 3 data...\n");
    emitFig3(dir);
    std::printf("emitting Figure 4 data...\n");
    emitFig4(dir);
    std::printf("done: %s/fig{2,3,4}.{dat,gp} — render with "
                "'gnuplot figN.gp'\n",
                dir.string().c_str());
    return 0;
}
